//! Set-associative cache arrays with MESI line states and LRU
//! replacement.
//!
//! This module provides the mechanical storage layer; the coherence
//! *protocol* (who supplies data, who invalidates) lives in
//! [`crate::memsys`]. Lines are tracked by [`LineAddr`]; data values are
//! not stored — the simulator models timing and coherence, while the
//! functional outcome of each access is tracked separately by
//! [`crate::truth`].

use crate::config::CacheGeometry;
use cord_trace::types::LineAddr;

/// MESI coherence state of a cached line (absence from the cache is the
/// Invalid state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Modified: sole copy, dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly other copies, clean.
    Shared,
}

impl Mesi {
    /// `true` if this copy may be written without a bus transaction.
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }

    /// `true` if a write-back is needed when the line leaves the cache.
    #[inline]
    pub fn dirty(self) -> bool {
        matches!(self, Mesi::Modified)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: LineAddr,
    state: Mesi,
    lru: u64,
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Its state at eviction (dirty ⇒ write-back).
    pub state: Mesi,
}

/// Storage for the sets: dense for realistic caches; a flat slot map for
/// the paper's "infinite" configurations (eagerly allocating millions of
/// *sets* would dominate run time, but a one-word-per-set index is cheap
/// and keeps set lookup off the hash path); a hash map only for
/// geometries too large even for the slot map.
#[derive(Debug, Clone)]
enum SetStore {
    Dense(Vec<Vec<Entry>>),
    /// `slot_of_set[set]` is [`NO_SLOT`] until the set's first line
    /// arrives, then an index into `sets`. The slot map itself grows
    /// lazily to the highest touched set index (machines are built per
    /// run, and eagerly zeroing megabytes of slots per construction
    /// would dwarf the runs themselves); indices past its current
    /// length are untouched sets. Slot allocation order follows first
    /// touch; per-set entry order is identical to [`Dense`].
    Mapped {
        slot_of_set: Vec<u32>,
        sets: Vec<Vec<Entry>>,
    },
    Sparse(std::collections::HashMap<u64, Vec<Entry>>),
}

/// Above this set count the cache stops pre-allocating a `Vec` per set.
const SPARSE_THRESHOLD: u64 = 1 << 14;

/// Above this set count even the flat slot map (4 bytes per set) is too
/// large, and the cache falls back to hashed set lookup.
const MAPPED_THRESHOLD: u64 = 1 << 22;

/// Sentinel slot for a never-touched set in [`SetStore::Mapped`].
const NO_SLOT: u32 = u32::MAX;

/// One set-associative cache array.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: SetStore,
    tick: u64,
    /// `num_sets - 1`, precomputed so the per-access set index is a
    /// mask instead of a division (set counts are asserted to be powers
    /// of two at geometry construction).
    set_mask: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let num_sets = geometry.num_sets();
        debug_assert!(num_sets.is_power_of_two());
        let sets = if num_sets <= SPARSE_THRESHOLD {
            SetStore::Dense((0..num_sets).map(|_| Vec::new()).collect())
        } else if num_sets <= MAPPED_THRESHOLD {
            SetStore::Mapped {
                slot_of_set: Vec::new(),
                sets: Vec::new(),
            }
        } else {
            SetStore::Sparse(std::collections::HashMap::new())
        };
        Cache {
            geometry,
            sets,
            tick: 0,
            set_mask: num_sets - 1,
        }
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> u64 {
        line.0 & self.set_mask
    }

    #[inline]
    fn set(&self, idx: u64) -> Option<&Vec<Entry>> {
        match &self.sets {
            SetStore::Dense(v) => Some(&v[idx as usize]),
            SetStore::Mapped { slot_of_set, sets } => {
                match slot_of_set.get(idx as usize).copied().unwrap_or(NO_SLOT) {
                    NO_SLOT => None,
                    slot => Some(&sets[slot as usize]),
                }
            }
            SetStore::Sparse(m) => m.get(&idx),
        }
    }

    #[inline]
    fn set_mut(&mut self, idx: u64) -> &mut Vec<Entry> {
        match &mut self.sets {
            SetStore::Dense(v) => &mut v[idx as usize],
            SetStore::Mapped { slot_of_set, sets } => {
                let i = idx as usize;
                if i >= slot_of_set.len() {
                    slot_of_set.resize(i + 1, NO_SLOT);
                }
                let slot = &mut slot_of_set[i];
                if *slot == NO_SLOT {
                    *slot = u32::try_from(sets.len()).expect("set slots fit in u32");
                    sets.push(Vec::new());
                }
                &mut sets[*slot as usize]
            }
            SetStore::Sparse(m) => m.entry(idx).or_default(),
        }
    }

    /// The state of `line` if present.
    pub fn probe(&self, line: LineAddr) -> Option<Mesi> {
        self.set(self.set_index(line))?
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.state)
    }

    /// Probe and touch in one set scan: if `line` is present, marks it
    /// most-recently-used and returns its state. Equivalent to
    /// `probe(line)` followed by `touch(line)` on a hit (the LRU tick
    /// only advances on hits, exactly as a probe-then-touch pair would),
    /// but pays a single scan — the hot-path fusion the per-access
    /// pipeline relies on.
    #[inline]
    pub fn touch_probe(&mut self, line: LineAddr) -> Option<Mesi> {
        let idx = self.set_index(line);
        // Read path first: an absent set (Mapped/Sparse) must not
        // allocate storage the way `set_mut` would.
        let pos = self.set(idx)?.iter().position(|e| e.line == line)?;
        self.tick += 1;
        let tick = self.tick;
        let e = &mut self.set_mut(idx)[pos];
        e.lru = tick;
        Some(e.state)
    }

    /// Set-state and touch in one scan: changes the state of a present
    /// line and marks it most-recently-used. Equivalent to `set_state`
    /// followed by `touch`, in one scan.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    #[inline]
    pub fn set_state_touch(&mut self, line: LineAddr, state: Mesi) {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let e = self
            .set_mut(idx)
            .iter_mut()
            .find(|e| e.line == line)
            .expect("set_state_touch of absent line");
        e.state = state;
        e.lru = tick;
    }

    /// `true` if `line` is present in any state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Marks `line` most-recently-used.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn touch(&mut self, line: LineAddr) {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let e = self
            .set_mut(idx)
            .iter_mut()
            .find(|e| e.line == line)
            .expect("touch of absent line");
        e.lru = tick;
    }

    /// Changes the state of a present line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn set_state(&mut self, line: LineAddr, state: Mesi) {
        let idx = self.set_index(line);
        let e = self
            .set_mut(idx)
            .iter_mut()
            .find(|e| e.line == line)
            .expect("set_state of absent line");
        e.state = state;
    }

    /// Inserts `line` with `state`, evicting the LRU entry of a full set.
    /// Returns the victim, if any.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (callers must use
    /// [`Cache::set_state`] for state changes).
    pub fn insert(&mut self, line: LineAddr, state: Mesi) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.geometry.ways as usize;
        let idx = self.set_index(line);
        let set = self.set_mut(idx);
        assert!(
            !set.iter().any(|e| e.line == line),
            "insert of already-present line {line}"
        );
        let victim = if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("full set is nonempty");
            let v = set.swap_remove(vi);
            Some(Victim {
                line: v.line,
                state: v.state,
            })
        } else {
            None
        };
        set.push(Entry {
            line,
            state,
            lru: tick,
        });
        victim
    }

    /// Removes `line` (invalidation); returns its prior state if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<Mesi> {
        let idx = self.set_index(line);
        let set = match &mut self.sets {
            SetStore::Dense(v) => &mut v[idx as usize],
            SetStore::Mapped { slot_of_set, sets } => {
                match slot_of_set.get(idx as usize).copied().unwrap_or(NO_SLOT) {
                    NO_SLOT => return None,
                    slot => &mut sets[slot as usize],
                }
            }
            SetStore::Sparse(m) => m.get_mut(&idx)?,
        };
        let pos = set.iter().position(|e| e.line == line)?;
        Some(set.swap_remove(pos).state)
    }

    /// Iterates over all resident lines and their states. Iteration
    /// order depends on the backing store; callers must not rely on it.
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, Mesi)> + '_ {
        let (dense, mapped, sparse) = match &self.sets {
            SetStore::Dense(v) => (Some(v.iter()), None, None),
            SetStore::Mapped { sets, .. } => (None, Some(sets.iter()), None),
            SetStore::Sparse(m) => (None, None, Some(m.values())),
        };
        dense
            .into_iter()
            .flatten()
            .chain(mapped.into_iter().flatten())
            .chain(sparse.into_iter().flatten())
            .flat_map(|s| s.iter().map(|e| (e.line, e.state)))
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        match &self.sets {
            SetStore::Dense(v) => v.iter().map(Vec::len).sum(),
            SetStore::Mapped { sets, .. } => sets.iter().map(Vec::len).sum(),
            SetStore::Sparse(m) => m.values().map(Vec::len).sum(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 2 ways x 2 sets.
        Cache::new(CacheGeometry::new(4 * 64, 2))
    }

    #[test]
    fn insert_probe_remove_roundtrip() {
        let mut c = small_cache();
        assert_eq!(c.probe(LineAddr(0)), None);
        assert!(c.insert(LineAddr(0), Mesi::Exclusive).is_none());
        assert_eq!(c.probe(LineAddr(0)), Some(Mesi::Exclusive));
        assert_eq!(c.remove(LineAddr(0)), Some(Mesi::Exclusive));
        assert_eq!(c.probe(LineAddr(0)), None);
        assert_eq!(c.remove(LineAddr(0)), None);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small_cache();
        // Lines 0, 2, 4 all map to set 0 (even line numbers, 2 sets).
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(2), Mesi::Shared);
        c.touch(LineAddr(0)); // 2 is now LRU
        let v = c.insert(LineAddr(4), Mesi::Shared).expect("eviction");
        assert_eq!(v.line, LineAddr(2));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache();
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(1), Mesi::Shared); // odd -> set 1
        c.insert(LineAddr(2), Mesi::Shared);
        assert!(c.insert(LineAddr(3), Mesi::Shared).is_none());
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn set_state_changes_in_place() {
        let mut c = small_cache();
        c.insert(LineAddr(6), Mesi::Shared);
        c.set_state(LineAddr(6), Mesi::Modified);
        assert_eq!(c.probe(LineAddr(6)), Some(Mesi::Modified));
        assert!(Mesi::Modified.dirty());
        assert!(Mesi::Modified.writable());
        assert!(Mesi::Exclusive.writable());
        assert!(!Mesi::Shared.writable());
        assert!(!Mesi::Shared.dirty());
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_insert_panics() {
        let mut c = small_cache();
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(0), Mesi::Shared);
    }

    #[test]
    fn lines_iterates_everything() {
        let mut c = small_cache();
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(1), Mesi::Modified);
        let mut got: Vec<_> = c.lines().collect();
        got.sort_by_key(|(l, _)| l.0);
        assert_eq!(
            got,
            vec![(LineAddr(0), Mesi::Shared), (LineAddr(1), Mesi::Modified)]
        );
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use crate::config::CacheGeometry;

    #[test]
    fn huge_caches_use_mapped_storage_transparently() {
        // 256 MB, 16-way: past the dense threshold, within the slot map.
        let mut c = Cache::new(CacheGeometry::new(256 * 1024 * 1024, 16));
        assert!(matches!(c.sets, SetStore::Mapped { .. }));
        for i in 0..1000u64 {
            assert!(c.insert(LineAddr(i * 7919), Mesi::Shared).is_none());
        }
        assert_eq!(c.occupancy(), 1000);
        assert_eq!(c.probe(LineAddr(7919)), Some(Mesi::Shared));
        c.set_state(LineAddr(7919), Mesi::Modified);
        c.touch(LineAddr(7919));
        assert_eq!(c.remove(LineAddr(7919)), Some(Mesi::Modified));
        assert_eq!(c.occupancy(), 999);
        assert_eq!(c.lines().count(), 999);
        assert_eq!(c.remove(LineAddr(424242)), None);
    }

    #[test]
    fn paper_caches_stay_dense() {
        let c = Cache::new(CacheGeometry::new(32 * 1024, 8));
        assert!(matches!(c.sets, SetStore::Dense(_)));
    }

    #[test]
    fn oversized_caches_fall_back_to_sparse_storage() {
        // Direct-mapped 512 MB: 2^23 sets, past the slot-map threshold.
        let mut c = Cache::new(CacheGeometry::new(512 * 1024 * 1024, 1));
        assert!(matches!(c.sets, SetStore::Sparse(_)));
        for i in 0..100u64 {
            assert!(c.insert(LineAddr(i * 104_729), Mesi::Shared).is_none());
        }
        assert_eq!(c.occupancy(), 100);
        assert_eq!(c.lines().count(), 100);
        assert_eq!(c.remove(LineAddr(104_729)), Some(Mesi::Shared));
        assert_eq!(c.occupancy(), 99);
    }
}
