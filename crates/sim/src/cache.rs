//! Set-associative cache arrays with MESI line states and LRU
//! replacement.
//!
//! This module provides the mechanical storage layer; the coherence
//! *protocol* (who supplies data, who invalidates) lives in
//! [`crate::memsys`]. Lines are tracked by [`LineAddr`]; data values are
//! not stored — the simulator models timing and coherence, while the
//! functional outcome of each access is tracked separately by
//! [`crate::truth`].

use crate::config::CacheGeometry;
use cord_trace::types::LineAddr;

/// MESI coherence state of a cached line (absence from the cache is the
/// Invalid state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Modified: sole copy, dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly other copies, clean.
    Shared,
}

impl Mesi {
    /// `true` if this copy may be written without a bus transaction.
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }

    /// `true` if a write-back is needed when the line leaves the cache.
    #[inline]
    pub fn dirty(self) -> bool {
        matches!(self, Mesi::Modified)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: LineAddr,
    state: Mesi,
    lru: u64,
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Its state at eviction (dirty ⇒ write-back).
    pub state: Mesi,
}

/// Storage for the sets: dense for realistic caches, sparse for the
/// paper's "infinite" configurations (eagerly allocating millions of
/// empty sets would dominate run time).
#[derive(Debug, Clone)]
enum SetStore {
    Dense(Vec<Vec<Entry>>),
    Sparse(std::collections::HashMap<u64, Vec<Entry>>),
}

/// Above this set count the cache stores sets sparsely.
const SPARSE_THRESHOLD: u64 = 1 << 14;

/// One set-associative cache array.
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: SetStore,
    tick: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = if geometry.num_sets() > SPARSE_THRESHOLD {
            SetStore::Sparse(std::collections::HashMap::new())
        } else {
            SetStore::Dense((0..geometry.num_sets()).map(|_| Vec::new()).collect())
        };
        Cache {
            geometry,
            sets,
            tick: 0,
        }
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> u64 {
        line.0 % self.geometry.num_sets()
    }

    #[inline]
    fn set(&self, idx: u64) -> Option<&Vec<Entry>> {
        match &self.sets {
            SetStore::Dense(v) => Some(&v[idx as usize]),
            SetStore::Sparse(m) => m.get(&idx),
        }
    }

    #[inline]
    fn set_mut(&mut self, idx: u64) -> &mut Vec<Entry> {
        match &mut self.sets {
            SetStore::Dense(v) => &mut v[idx as usize],
            SetStore::Sparse(m) => m.entry(idx).or_default(),
        }
    }

    /// The state of `line` if present.
    pub fn probe(&self, line: LineAddr) -> Option<Mesi> {
        self.set(self.set_index(line))?
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.state)
    }

    /// `true` if `line` is present in any state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Marks `line` most-recently-used.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn touch(&mut self, line: LineAddr) {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let e = self
            .set_mut(idx)
            .iter_mut()
            .find(|e| e.line == line)
            .expect("touch of absent line");
        e.lru = tick;
    }

    /// Changes the state of a present line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn set_state(&mut self, line: LineAddr, state: Mesi) {
        let idx = self.set_index(line);
        let e = self
            .set_mut(idx)
            .iter_mut()
            .find(|e| e.line == line)
            .expect("set_state of absent line");
        e.state = state;
    }

    /// Inserts `line` with `state`, evicting the LRU entry of a full set.
    /// Returns the victim, if any.
    ///
    /// # Panics
    ///
    /// Panics if the line is already present (callers must use
    /// [`Cache::set_state`] for state changes).
    pub fn insert(&mut self, line: LineAddr, state: Mesi) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.geometry.ways as usize;
        let idx = self.set_index(line);
        let set = self.set_mut(idx);
        assert!(
            !set.iter().any(|e| e.line == line),
            "insert of already-present line {line}"
        );
        let victim = if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("full set is nonempty");
            let v = set.swap_remove(vi);
            Some(Victim {
                line: v.line,
                state: v.state,
            })
        } else {
            None
        };
        set.push(Entry {
            line,
            state,
            lru: tick,
        });
        victim
    }

    /// Removes `line` (invalidation); returns its prior state if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<Mesi> {
        let idx = self.set_index(line);
        let set = match &mut self.sets {
            SetStore::Dense(v) => &mut v[idx as usize],
            SetStore::Sparse(m) => m.get_mut(&idx)?,
        };
        let pos = set.iter().position(|e| e.line == line)?;
        Some(set.swap_remove(pos).state)
    }

    /// Iterates over all resident lines and their states.
    pub fn lines(&self) -> Box<dyn Iterator<Item = (LineAddr, Mesi)> + '_> {
        match &self.sets {
            SetStore::Dense(v) => {
                Box::new(v.iter().flat_map(|s| s.iter().map(|e| (e.line, e.state))))
            }
            SetStore::Sparse(m) => {
                Box::new(m.values().flat_map(|s| s.iter().map(|e| (e.line, e.state))))
            }
        }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        match &self.sets {
            SetStore::Dense(v) => v.iter().map(Vec::len).sum(),
            SetStore::Sparse(m) => m.values().map(Vec::len).sum(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 2 ways x 2 sets.
        Cache::new(CacheGeometry::new(4 * 64, 2))
    }

    #[test]
    fn insert_probe_remove_roundtrip() {
        let mut c = small_cache();
        assert_eq!(c.probe(LineAddr(0)), None);
        assert!(c.insert(LineAddr(0), Mesi::Exclusive).is_none());
        assert_eq!(c.probe(LineAddr(0)), Some(Mesi::Exclusive));
        assert_eq!(c.remove(LineAddr(0)), Some(Mesi::Exclusive));
        assert_eq!(c.probe(LineAddr(0)), None);
        assert_eq!(c.remove(LineAddr(0)), None);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut c = small_cache();
        // Lines 0, 2, 4 all map to set 0 (even line numbers, 2 sets).
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(2), Mesi::Shared);
        c.touch(LineAddr(0)); // 2 is now LRU
        let v = c.insert(LineAddr(4), Mesi::Shared).expect("eviction");
        assert_eq!(v.line, LineAddr(2));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache();
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(1), Mesi::Shared); // odd -> set 1
        c.insert(LineAddr(2), Mesi::Shared);
        assert!(c.insert(LineAddr(3), Mesi::Shared).is_none());
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn set_state_changes_in_place() {
        let mut c = small_cache();
        c.insert(LineAddr(6), Mesi::Shared);
        c.set_state(LineAddr(6), Mesi::Modified);
        assert_eq!(c.probe(LineAddr(6)), Some(Mesi::Modified));
        assert!(Mesi::Modified.dirty());
        assert!(Mesi::Modified.writable());
        assert!(Mesi::Exclusive.writable());
        assert!(!Mesi::Shared.writable());
        assert!(!Mesi::Shared.dirty());
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_insert_panics() {
        let mut c = small_cache();
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(0), Mesi::Shared);
    }

    #[test]
    fn lines_iterates_everything() {
        let mut c = small_cache();
        c.insert(LineAddr(0), Mesi::Shared);
        c.insert(LineAddr(1), Mesi::Modified);
        let mut got: Vec<_> = c.lines().collect();
        got.sort_by_key(|(l, _)| l.0);
        assert_eq!(
            got,
            vec![(LineAddr(0), Mesi::Shared), (LineAddr(1), Mesi::Modified)]
        );
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use crate::config::CacheGeometry;

    #[test]
    fn huge_caches_use_sparse_storage_transparently() {
        // 256 MB, 16-way: far past the sparse threshold.
        let mut c = Cache::new(CacheGeometry::new(256 * 1024 * 1024, 16));
        assert!(matches!(c.sets, SetStore::Sparse(_)));
        for i in 0..1000u64 {
            assert!(c.insert(LineAddr(i * 7919), Mesi::Shared).is_none());
        }
        assert_eq!(c.occupancy(), 1000);
        assert_eq!(c.probe(LineAddr(7919)), Some(Mesi::Shared));
        c.set_state(LineAddr(7919), Mesi::Modified);
        c.touch(LineAddr(7919));
        assert_eq!(c.remove(LineAddr(7919)), Some(Mesi::Modified));
        assert_eq!(c.occupancy(), 999);
        assert_eq!(c.lines().count(), 999);
        assert_eq!(c.remove(LineAddr(424242)), None);
    }

    #[test]
    fn paper_caches_stay_dense() {
        let c = Cache::new(CacheGeometry::new(32 * 1024, 8));
        assert!(matches!(c.sets, SetStore::Dense(_)));
    }
}
