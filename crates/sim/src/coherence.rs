//! Pluggable coherence-transaction timing: the paper's snooping bus and
//! the §2.5 directory extension as interchangeable backends.
//!
//! [`MemorySystem`](crate::memsys::MemorySystem) owns the *functional*
//! MESI protocol — who holds which line in which state, inclusion,
//! invalidation events. What differs between a snooping-bus machine and
//! a directory-based one is purely *when* transactions complete and
//! which shared resources they occupy. That timing is factored out here
//! behind [`CoherenceBackend`], with one implementation per
//! [`CoherenceKind`](crate::config::CoherenceKind):
//!
//! * [`SnoopingBackend`] — every transaction broadcasts on the shared
//!   address bus; data moves on the data or memory bus. This reproduces
//!   the pre-refactor timing *byte for byte* (the refactor-guard and
//!   golden-determinism fixtures pin it).
//! * [`DirectoryBackend`] — each line has a *home* directory bank,
//!   chosen by hashing its [`dense_line_index`] over the banks. A
//!   transaction first reaches the home over the address network, then
//!   serializes on that bank's occupancy port and pays a lookup
//!   latency; transfers that involve a third party (sibling supplier or
//!   sharer invalidations) pay an additional forwarding hop. This
//!   replaces the old flat `directory_penalty()` constant with a model
//!   in which *contention at hot homes* — not a fixed adder — is what
//!   grows with core count.
//!
//! Every access in a run flows through exactly one of three completion
//! shapes, mirroring the three timed paths in
//! [`MemorySystem::access`](crate::memsys::MemorySystem::access):
//! permission upgrades, fills from memory, and fills from a sibling
//! cache. The backend is handed `granted` — the cycle its own
//! [`request`](CoherenceBackend::request) returned — so arbitration and
//! completion stay paired even when the protocol layer mutates cache
//! state in between.

use crate::bus::{Bus, Buses};
use crate::config::{CoherenceKind, MachineConfig};
use cord_trace::layout::dense_line_index;
use cord_trace::types::LineAddr;

/// Counters a backend accumulates over a run; harvested into
/// [`SimStats`](crate::stats::SimStats) when the machine finishes.
/// All-zero for the snooping backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Directory lookups performed (one per coherence transaction).
    pub directory_lookups: u64,
    /// Transactions that needed a forwarding hop to a third party
    /// (sibling supplier or directed sharer invalidation).
    pub directory_forwards: u64,
    /// Total busy cycles across all home-bank occupancy ports.
    pub home_busy_cycles: u64,
    /// Total cycles transactions waited for a busy home bank.
    pub home_wait_cycles: u64,
}

/// Timing model for coherence transactions.
///
/// The protocol layer calls [`request`](Self::request) once per bus
/// transaction (upgrade or miss) and then exactly one of the three
/// `*_done` methods to learn the completion cycle. Implementations may
/// acquire shared buses and private resources; they must not look at
/// cache state.
pub trait CoherenceBackend {
    /// Arbitrates a coherence transaction for `line` issued at `now`.
    /// Returns the cycle at which the protocol has resolved ownership
    /// (snooping: the bus grant; directory: the home lookup result).
    fn request(&mut self, buses: &mut Buses, now: u64, line: LineAddr) -> u64;

    /// Completion of a permission upgrade whose request resolved at
    /// `granted`; `hit_cycles` is the local hit latency the write still
    /// pays once permission arrives.
    fn upgrade_done(
        &mut self,
        buses: &mut Buses,
        granted: u64,
        line: LineAddr,
        hit_cycles: u64,
    ) -> u64;

    /// Completion of a fill supplied by main memory.
    fn memory_fill_done(&mut self, buses: &mut Buses, granted: u64, line: LineAddr) -> u64;

    /// Completion of a fill supplied by a sibling cache.
    /// `dirty_writebacks` dirty holders additionally post a line
    /// write-back on the memory bus.
    fn sibling_fill_done(
        &mut self,
        buses: &mut Buses,
        granted: u64,
        line: LineAddr,
        dirty_writebacks: usize,
    ) -> u64;

    /// Counters accumulated so far.
    fn stats(&self) -> CoherenceStats;
}

/// Broadcast snooping over the shared buses — the paper's machine.
///
/// The call sequence into [`Buses`] is identical, acquire for acquire,
/// to the timing that used to live inline in `MemorySystem::access`, so
/// 4-core snooping runs remain bit-identical under the refactor.
#[derive(Debug, Clone)]
pub struct SnoopingBackend {
    addr_slot_cycles: u64,
    data_occupancy: u64,
    mem_occupancy: u64,
    cache_to_cache_cycles: u64,
    memory_cycles: u64,
}

impl SnoopingBackend {
    /// Snooping timing from `cfg`'s bus parameters.
    pub fn new(cfg: &MachineConfig) -> Self {
        SnoopingBackend {
            addr_slot_cycles: cfg.addr_bus_slot_cycles,
            data_occupancy: cfg.data_bus_line_occupancy,
            mem_occupancy: cfg.mem_bus_line_occupancy,
            cache_to_cache_cycles: cfg.cache_to_cache_cycles,
            memory_cycles: cfg.memory_cycles,
        }
    }
}

impl CoherenceBackend for SnoopingBackend {
    fn request(&mut self, buses: &mut Buses, now: u64, _line: LineAddr) -> u64 {
        buses.addr.acquire(now, self.addr_slot_cycles)
    }

    fn upgrade_done(
        &mut self,
        _buses: &mut Buses,
        granted: u64,
        _line: LineAddr,
        hit_cycles: u64,
    ) -> u64 {
        // The upgrade completes once the broadcast slot has drained and
        // the local write replays.
        granted + self.addr_slot_cycles + hit_cycles
    }

    fn memory_fill_done(&mut self, buses: &mut Buses, granted: u64, _line: LineAddr) -> u64 {
        let mstart = buses.mem.acquire(granted, self.mem_occupancy);
        mstart + self.memory_cycles
    }

    fn sibling_fill_done(
        &mut self,
        buses: &mut Buses,
        granted: u64,
        _line: LineAddr,
        dirty_writebacks: usize,
    ) -> u64 {
        // A Modified holder's data also updates memory (posted
        // write-back that occupies the memory bus but does not delay
        // the requester beyond data-bus arbitration).
        for _ in 0..dirty_writebacks {
            buses.mem.acquire(granted, self.mem_occupancy);
        }
        let dstart = buses.data.acquire(granted, self.data_occupancy);
        dstart + self.cache_to_cache_cycles
    }

    fn stats(&self) -> CoherenceStats {
        CoherenceStats::default()
    }
}

/// Directory-based MESI: per-line home banks with occupancy and
/// forwarding latency (§2.5's sketch, made concrete).
///
/// Homes are assigned by `dense_line_index(line) % banks` with one bank
/// per core, so growing the machine also grows directory bandwidth —
/// the scaling question is whether hot lines serialize at their home.
#[derive(Debug, Clone)]
pub struct DirectoryBackend {
    addr_slot_cycles: u64,
    data_occupancy: u64,
    mem_occupancy: u64,
    cache_to_cache_cycles: u64,
    memory_cycles: u64,
    lookup_cycles: u64,
    forward_cycles: u64,
    occupancy_cycles: u64,
    homes: Vec<Bus>,
    lookups: u64,
    forwards: u64,
}

impl DirectoryBackend {
    /// Directory timing from `cfg`, with one home bank per core.
    pub fn new(cfg: &MachineConfig) -> Self {
        DirectoryBackend {
            addr_slot_cycles: cfg.addr_bus_slot_cycles,
            data_occupancy: cfg.data_bus_line_occupancy,
            mem_occupancy: cfg.mem_bus_line_occupancy,
            cache_to_cache_cycles: cfg.cache_to_cache_cycles,
            memory_cycles: cfg.memory_cycles,
            lookup_cycles: cfg.directory_lookup_cycles,
            forward_cycles: cfg.directory_forward_cycles,
            occupancy_cycles: cfg.directory_occupancy_cycles,
            homes: vec![Bus::new(); cfg.cores.max(1)],
            lookups: 0,
            forwards: 0,
        }
    }

    /// The home bank serving `line`.
    pub fn home_of(&self, line: LineAddr) -> usize {
        dense_line_index(line) % self.homes.len()
    }
}

impl CoherenceBackend for DirectoryBackend {
    fn request(&mut self, buses: &mut Buses, now: u64, line: LineAddr) -> u64 {
        // Reach the home over the address network, serialize on the
        // bank's port, then pay the lookup.
        let sent = buses.addr.acquire(now, self.addr_slot_cycles);
        let home = self.home_of(line);
        let served = self.homes[home].acquire(sent + self.addr_slot_cycles, self.occupancy_cycles);
        self.lookups += 1;
        served + self.lookup_cycles
    }

    fn upgrade_done(
        &mut self,
        _buses: &mut Buses,
        granted: u64,
        _line: LineAddr,
        hit_cycles: u64,
    ) -> u64 {
        // The home forwards directed invalidations to the sharers and
        // the writer proceeds once the acks drain (one hop, since the
        // sharers respond in parallel).
        self.forwards += 1;
        granted + self.forward_cycles + hit_cycles
    }

    fn memory_fill_done(&mut self, buses: &mut Buses, granted: u64, _line: LineAddr) -> u64 {
        // The directory lives at the memory controller, so an
        // uncached line needs no forwarding hop — the lookup result
        // feeds the fetch directly.
        let mstart = buses.mem.acquire(granted, self.mem_occupancy);
        mstart + self.memory_cycles
    }

    fn sibling_fill_done(
        &mut self,
        buses: &mut Buses,
        granted: u64,
        _line: LineAddr,
        dirty_writebacks: usize,
    ) -> u64 {
        // Forward the request to the owner, who supplies the line
        // (and, if dirty, posts write-backs as in the snooping case).
        self.forwards += 1;
        let at_owner = granted + self.forward_cycles;
        for _ in 0..dirty_writebacks {
            buses.mem.acquire(at_owner, self.mem_occupancy);
        }
        let dstart = buses.data.acquire(at_owner, self.data_occupancy);
        dstart + self.cache_to_cache_cycles
    }

    fn stats(&self) -> CoherenceStats {
        CoherenceStats {
            directory_lookups: self.lookups,
            directory_forwards: self.forwards,
            home_busy_cycles: self.homes.iter().map(Bus::busy_cycles).sum(),
            home_wait_cycles: self.homes.iter().map(Bus::contention_cycles).sum(),
        }
    }
}

/// Closed enum over the backends so the hot path stays monomorphic
/// (no vtable between `MemorySystem::access` and the bus model).
#[derive(Debug, Clone)]
pub enum BackendEnum {
    /// Broadcast snooping (the paper's machine).
    Snooping(SnoopingBackend),
    /// Directory-based MESI.
    Directory(DirectoryBackend),
}

impl BackendEnum {
    /// The backend `cfg.coherence` selects.
    pub fn for_config(cfg: &MachineConfig) -> Self {
        match cfg.coherence {
            CoherenceKind::SnoopingBus => BackendEnum::Snooping(SnoopingBackend::new(cfg)),
            CoherenceKind::Directory => BackendEnum::Directory(DirectoryBackend::new(cfg)),
        }
    }
}

impl CoherenceBackend for BackendEnum {
    fn request(&mut self, buses: &mut Buses, now: u64, line: LineAddr) -> u64 {
        match self {
            BackendEnum::Snooping(b) => b.request(buses, now, line),
            BackendEnum::Directory(b) => b.request(buses, now, line),
        }
    }

    fn upgrade_done(
        &mut self,
        buses: &mut Buses,
        granted: u64,
        line: LineAddr,
        hit_cycles: u64,
    ) -> u64 {
        match self {
            BackendEnum::Snooping(b) => b.upgrade_done(buses, granted, line, hit_cycles),
            BackendEnum::Directory(b) => b.upgrade_done(buses, granted, line, hit_cycles),
        }
    }

    fn memory_fill_done(&mut self, buses: &mut Buses, granted: u64, line: LineAddr) -> u64 {
        match self {
            BackendEnum::Snooping(b) => b.memory_fill_done(buses, granted, line),
            BackendEnum::Directory(b) => b.memory_fill_done(buses, granted, line),
        }
    }

    fn sibling_fill_done(
        &mut self,
        buses: &mut Buses,
        granted: u64,
        line: LineAddr,
        dirty_writebacks: usize,
    ) -> u64 {
        match self {
            BackendEnum::Snooping(b) => b.sibling_fill_done(buses, granted, line, dirty_writebacks),
            BackendEnum::Directory(b) => {
                b.sibling_fill_done(buses, granted, line, dirty_writebacks)
            }
        }
    }

    fn stats(&self) -> CoherenceStats {
        match self {
            BackendEnum::Snooping(b) => b.stats(),
            BackendEnum::Directory(b) => b.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cord_trace::layout::SYNC_BASE_LINE;

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn snooping_matches_legacy_bus_sequence() {
        let cfg = MachineConfig::paper_4core();
        let mut b = SnoopingBackend::new(&cfg);
        let mut buses = Buses::new();

        // Upgrade: one address slot, then slot + hit.
        let granted = b.request(&mut buses, 100, line(1));
        assert_eq!(granted, 100);
        assert_eq!(
            b.upgrade_done(&mut buses, granted, line(1), cfg.l1_hit_cycles),
            100 + cfg.addr_bus_slot_cycles + cfg.l1_hit_cycles
        );
        assert_eq!(buses.addr.busy_cycles(), cfg.addr_bus_slot_cycles);

        // Memory fill: memory-bus occupancy overlaps the fetch.
        let granted = b.request(&mut buses, 1000, line(2));
        assert_eq!(
            b.memory_fill_done(&mut buses, granted, line(2)),
            1000 + cfg.memory_cycles
        );

        // Sibling fill with one dirty holder: a posted write-back plus
        // the data-bus transfer.
        let granted = b.request(&mut buses, 2000, line(3));
        let done = b.sibling_fill_done(&mut buses, granted, line(3), 1);
        assert_eq!(done, 2000 + cfg.cache_to_cache_cycles);
        assert_eq!(buses.mem.transactions(), 2);
        assert_eq!(b.stats(), CoherenceStats::default());
    }

    #[test]
    fn directory_homes_follow_dense_indices() {
        let cfg = MachineConfig::paper_4core_directory();
        let b = DirectoryBackend::new(&cfg);
        // Data line L homes at 2L % cores; sync line o at (2o + 1) % cores.
        assert_eq!(b.home_of(line(0)), 0);
        assert_eq!(b.home_of(line(1)), 2);
        assert_eq!(b.home_of(line(3)), 6 % cfg.cores);
        assert_eq!(b.home_of(line(SYNC_BASE_LINE)), 1);
        assert_eq!(b.home_of(line(SYNC_BASE_LINE + 1)), 3);
    }

    #[test]
    fn directory_serializes_same_home_but_not_different_homes() {
        // A long bank occupancy makes home contention visible even
        // though the address network already spaces requests apart.
        let mut cfg = MachineConfig::paper_4core_directory();
        cfg.directory_occupancy_cycles = 4 * cfg.addr_bus_slot_cycles;
        let mut b = DirectoryBackend::new(&cfg);
        let mut buses = Buses::new();

        // Lines 0 and 2 (dense 0 and 4) both home at bank 0 with 4
        // cores; line 1 (dense 2) homes at bank 2.
        let first = b.request(&mut buses, 0, line(0));
        let contended = b.request(&mut buses, 0, line(2));
        assert!(
            contended > first,
            "same-home requests must serialize at the bank"
        );

        let mut fresh = DirectoryBackend::new(&cfg);
        let mut fresh_buses = Buses::new();
        let a = fresh.request(&mut fresh_buses, 0, line(0));
        let c = fresh.request(&mut fresh_buses, 0, line(1));
        // Different homes: only address-network arbitration separates
        // them, not home occupancy.
        assert_eq!(c - a, cfg.addr_bus_slot_cycles);
        assert!(fresh.stats().home_wait_cycles == 0);
        assert!(b.stats().home_wait_cycles > 0);
    }

    #[test]
    fn directory_counts_lookups_and_forwards() {
        let cfg = MachineConfig::paper_4core_directory();
        let mut b = DirectoryBackend::new(&cfg);
        let mut buses = Buses::new();

        let g = b.request(&mut buses, 0, line(0));
        b.memory_fill_done(&mut buses, g, line(0));
        let g = b.request(&mut buses, 100, line(0));
        b.sibling_fill_done(&mut buses, g, line(0), 0);
        let g = b.request(&mut buses, 200, line(0));
        b.upgrade_done(&mut buses, g, line(0), cfg.l1_hit_cycles);

        let s = b.stats();
        assert_eq!(s.directory_lookups, 3);
        assert_eq!(s.directory_forwards, 2);
        assert_eq!(s.home_busy_cycles, 3 * cfg.directory_occupancy_cycles);
    }

    #[test]
    fn enum_dispatch_matches_config_kind() {
        let snoop = BackendEnum::for_config(&MachineConfig::paper_4core());
        assert!(matches!(snoop, BackendEnum::Snooping(_)));
        let dir = BackendEnum::for_config(&MachineConfig::paper_4core_directory());
        assert!(matches!(dir, BackendEnum::Directory(_)));
    }
}
