//! Machine configuration: core count, cache geometry, and bus/memory
//! timing.
//!
//! Defaults follow the paper's experimental setup (§3.1): a 4-processor
//! CMP at 4 GHz with private 8 KB L1 and 32 KB L2 caches (reduced sizes,
//! per Woo et al., to preserve realistic hit rates on reduced inputs), a
//! 128-bit 1 GHz on-chip data bus, an address/timestamp bus at half the
//! data-bus frequency (§4.1), a 200 MHz quad-pumped 64-bit memory bus,
//! 600-cycle round-trip memory latency, and 20-cycle L2-to-L2 round
//! trips. All times in this crate are in processor cycles.

use cord_trace::types::LINE_BYTES;

/// Coherence organization (§2.5 sketches the directory extension of
/// CORD's snooping protocol; the detector is oblivious to the choice —
/// only miss/upgrade timing changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceKind {
    /// Broadcast snooping over the shared buses (the paper's machine).
    SnoopingBus,
    /// A directory at the memory controller: misses and upgrades pay an
    /// indirection (lookup + forward) before data moves, and
    /// invalidations are directed rather than broadcast.
    Directory,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (must match [`LINE_BYTES`]).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry, checking divisibility.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact number of sets of `ways`
    /// lines, or if `line_bytes` differs from the global [`LINE_BYTES`].
    pub fn new(capacity_bytes: u64, ways: u32) -> Self {
        let g = CacheGeometry {
            capacity_bytes,
            ways,
            line_bytes: LINE_BYTES,
        };
        assert_eq!(g.line_bytes, LINE_BYTES);
        assert!(
            capacity_bytes.is_multiple_of(u64::from(ways) * LINE_BYTES),
            "capacity {capacity_bytes} not divisible into {ways}-way sets of {LINE_BYTES}B lines"
        );
        assert!(
            g.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
        g
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.ways) * self.line_bytes)
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }
}

/// Hang protection for [`Machine::run`](crate::engine::Machine::run).
///
/// Fault injection (§3.4) can remove the release side of a
/// synchronization arc; with spin-waiting consumers the run then never
/// terminates on its own. The watchdog converts such hangs into typed
/// [`SimError`](crate::engine::SimError)s instead of letting a sweep
/// wedge:
///
/// * `max_cycles` bounds total simulated time
///   ([`CycleBudgetExceeded`](crate::engine::SimError::CycleBudgetExceeded));
/// * `progress_window` bounds the time since any thread last advanced
///   to a new workload op
///   ([`Livelock`](crate::engine::SimError::Livelock)) — spin re-polls
///   execute accesses but never fetch new ops, so they do not count as
///   progress.
///
/// The default is fully disabled, preserving unbounded runs for
/// fault-free use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Watchdog {
    /// Abort once simulated time exceeds this many cycles.
    pub max_cycles: Option<u64>,
    /// Abort once this many cycles pass without any thread fetching a
    /// new workload op (livelock detection).
    pub progress_window: Option<u64>,
}

impl Watchdog {
    /// No watchdog: runs are unbounded (the pre-watchdog behavior).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Both limits enabled.
    pub fn new(max_cycles: u64, progress_window: u64) -> Self {
        Watchdog {
            max_cycles: Some(max_cycles),
            progress_window: Some(progress_window),
        }
    }

    /// Only a total cycle budget.
    pub fn cycle_budget(max_cycles: u64) -> Self {
        Watchdog {
            max_cycles: Some(max_cycles),
            progress_window: None,
        }
    }

    /// Only a no-progress window.
    pub fn progress_window(window: u64) -> Self {
        Watchdog {
            max_cycles: None,
            progress_window: Some(window),
        }
    }

    /// Whether any limit is armed.
    pub fn is_enabled(&self) -> bool {
        self.max_cycles.is_some() || self.progress_window.is_some()
    }
}

/// Full machine configuration.
///
/// Construct with [`MachineConfig::paper_4core`] and adjust fields, or
/// build a custom one for sensitivity studies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processor cores (= threads, unless migrating).
    pub cores: usize,
    /// Private L1 geometry.
    pub l1: CacheGeometry,
    /// Private L2 geometry.
    pub l2: CacheGeometry,
    /// L1 hit latency (cycles).
    pub l1_hit_cycles: u64,
    /// L2 hit latency (cycles), including the L1 miss.
    pub l2_hit_cycles: u64,
    /// Round-trip latency of an L2-to-L2 (cache-to-cache) transfer.
    pub cache_to_cache_cycles: u64,
    /// Round-trip latency of a memory fetch.
    pub memory_cycles: u64,
    /// Data-bus occupancy of one line transfer (128-bit bus at 1/4 core
    /// frequency: 64 B / 16 B per bus cycle × 4 core cycles = 16).
    pub data_bus_line_occupancy: u64,
    /// Address/timestamp-bus occupancy of one transaction (half the data
    /// bus frequency: one slot = 8 core cycles).
    pub addr_bus_slot_cycles: u64,
    /// Memory-bus occupancy of one line transfer (quad-pumped 64-bit at
    /// 200 MHz: 32 B per bus cycle × 20 core cycles / bus cycle = 40).
    pub mem_bus_line_occupancy: u64,
    /// Cycles an instruction may wait for its in-flight race check
    /// before retirement is delayed (§3.1's "rare retirement delay").
    pub race_check_retire_window: u64,
    /// Context-switch penalty when a thread is (re)scheduled onto a
    /// core (only relevant when threads outnumber cores).
    pub reschedule_cycles: u64,
    /// Coherence organization.
    pub coherence: CoherenceKind,
    /// Directory lookup latency: cycles between a request being served
    /// at its home bank and the sharer set being known
    /// ([`CoherenceKind::Directory`] only).
    pub directory_lookup_cycles: u64,
    /// One-hop forwarding latency the home pays to reach a third party
    /// (sibling supplier or directed invalidations).
    pub directory_forward_cycles: u64,
    /// Occupancy of a home directory bank per transaction; back-to-back
    /// requests to the same home serialize by this much.
    pub directory_occupancy_cycles: u64,
    /// Maximum per-op scheduling jitter in cycles (models timing noise so
    /// different seeds produce different interleavings; 0 disables).
    pub jitter_cycles: u32,
    /// Rotate thread-to-core assignments at every barrier release
    /// (exercises §2.7.4 thread migration).
    pub migrate_at_barriers: bool,
    /// Capture per-thread resolved access streams for replay
    /// verification (memory-proportional to trace length).
    pub capture_resolved: bool,
    /// When `Some(c)`, flag waits *spin*: an unset flag is re-polled
    /// every `c` cycles instead of blocking the thread. This models
    /// user-level spin synchronization; with a removed release the
    /// result is a genuine livelock rather than a deadlock. `None`
    /// keeps the original passive-blocking semantics (and timing).
    pub flag_spin_cycles: Option<u64>,
    /// Hang protection; disabled by default.
    pub watchdog: Watchdog,
}

impl MachineConfig {
    /// The paper's 4-core CMP (§3.1).
    pub fn paper_4core() -> Self {
        MachineConfig {
            cores: 4,
            l1: CacheGeometry::new(8 * 1024, 4),
            l2: CacheGeometry::new(32 * 1024, 8),
            l1_hit_cycles: 2,
            l2_hit_cycles: 12,
            cache_to_cache_cycles: 20,
            memory_cycles: 600,
            data_bus_line_occupancy: 16,
            addr_bus_slot_cycles: 8,
            mem_bus_line_occupancy: 40,
            race_check_retire_window: 20,
            reschedule_cycles: 400,
            coherence: CoherenceKind::SnoopingBus,
            directory_lookup_cycles: 16,
            directory_forward_cycles: 12,
            directory_occupancy_cycles: 4,
            jitter_cycles: 3,
            migrate_at_barriers: false,
            capture_resolved: false,
            flag_spin_cycles: None,
            watchdog: Watchdog::disabled(),
        }
    }

    /// A machine with effectively infinite caches, used by the paper's
    /// *Ideal* and *InfCache* configurations ("Ideal's L2 cache is
    /// infinite and always hits").
    pub fn infinite_cache() -> Self {
        let mut cfg = Self::paper_4core();
        // 256 MB, enough that the reduced workloads never evict.
        cfg.l1 = CacheGeometry::new(64 * 1024 * 1024, 16);
        cfg.l2 = CacheGeometry::new(256 * 1024 * 1024, 16);
        cfg
    }

    /// The paper's machine with the §2.5 directory extension instead of
    /// snooping.
    pub fn paper_4core_directory() -> Self {
        MachineConfig {
            coherence: CoherenceKind::Directory,
            ..Self::paper_4core()
        }
    }

    /// Returns a copy with `cores` processor cores — the scaling sweep
    /// axis (4/8/16/32). Validity is checked by [`validate`](Self::validate).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Returns a copy using the given coherence organization.
    #[must_use]
    pub fn with_coherence(mut self, kind: CoherenceKind) -> Self {
        self.coherence = kind;
        self
    }

    /// Returns a copy with `capture_resolved` enabled.
    #[must_use]
    pub fn with_resolved_capture(mut self) -> Self {
        self.capture_resolved = true;
        self
    }

    /// Returns a copy with barrier-time thread migration enabled.
    #[must_use]
    pub fn with_barrier_migration(mut self) -> Self {
        self.migrate_at_barriers = true;
        self
    }

    /// Returns a copy with spin-waiting flags (re-poll every `cycles`).
    #[must_use]
    pub fn with_spin_waits(mut self, cycles: u64) -> Self {
        self.flag_spin_cycles = Some(cycles.max(1));
        self
    }

    /// Returns a copy with the given watchdog armed.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the L1 is larger than the L2 (inclusion would be
    /// impossible), there are no cores, or there are more cores than
    /// [`CoreId`](crate::observer::CoreId)'s `u8` can address.
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(
            self.cores <= 256,
            "at most 256 cores (CoreId is a u8), got {}",
            self.cores
        );
        assert!(
            self.l1.capacity_bytes <= self.l2.capacity_bytes,
            "L1 must not exceed L2 (inclusive hierarchy)"
        );
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_4core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = MachineConfig::paper_4core();
        c.validate();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.num_sets(), 32); // 8KB / (4 * 64B)
        assert_eq!(c.l2.num_sets(), 64); // 32KB / (8 * 64B)
        assert_eq!(c.l1.num_lines(), 128);
        assert_eq!(c.l2.num_lines(), 512);
    }

    #[test]
    fn bus_occupancies_match_paper_math() {
        let c = MachineConfig::paper_4core();
        // 64B over a 128-bit (16B) bus at 1/4 core clock.
        assert_eq!(c.data_bus_line_occupancy, 16);
        // Address bus at half the data bus rate.
        assert_eq!(c.addr_bus_slot_cycles, 8);
        // 64B over quad-pumped 64-bit (32B/bus-cycle) at 1/20 core clock.
        assert_eq!(c.mem_bus_line_occupancy, 40);
    }

    #[test]
    fn infinite_cache_is_huge() {
        let c = MachineConfig::infinite_cache();
        c.validate();
        assert!(c.l2.capacity_bytes >= 256 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheGeometry::new(3 * 64, 1);
    }

    #[test]
    #[should_panic(expected = "L1 must not exceed")]
    fn l1_bigger_than_l2_rejected() {
        let mut c = MachineConfig::paper_4core();
        c.l1 = CacheGeometry::new(64 * 1024, 4);
        c.validate();
    }

    #[test]
    fn builder_helpers() {
        let c = MachineConfig::paper_4core()
            .with_resolved_capture()
            .with_barrier_migration()
            .with_spin_waits(25)
            .with_watchdog(Watchdog::new(1_000_000, 50_000));
        assert!(c.capture_resolved);
        assert!(c.migrate_at_barriers);
        assert_eq!(c.flag_spin_cycles, Some(25));
        assert!(c.watchdog.is_enabled());
        assert_eq!(c.watchdog.max_cycles, Some(1_000_000));
    }

    #[test]
    fn cores_axis_builder_and_bounds() {
        for cores in [4usize, 8, 16, 32] {
            let c = MachineConfig::paper_4core()
                .with_cores(cores)
                .with_coherence(CoherenceKind::Directory);
            c.validate();
            assert_eq!(c.cores, cores);
            assert_eq!(c.coherence, CoherenceKind::Directory);
        }
    }

    #[test]
    #[should_panic(expected = "at most 256 cores")]
    fn more_cores_than_coreid_rejected() {
        MachineConfig::paper_4core().with_cores(257).validate();
    }

    #[test]
    fn watchdog_disabled_by_default() {
        let c = MachineConfig::paper_4core();
        assert!(!c.watchdog.is_enabled());
        assert_eq!(c.flag_spin_cycles, None);
        assert!(Watchdog::cycle_budget(10).is_enabled());
        assert!(Watchdog::progress_window(10).is_enabled());
    }
}
