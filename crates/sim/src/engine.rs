//! The discrete-event execution engine: the step loop composing the
//! focused kernel layers.
//!
//! Each thread runs pinned to one core (optionally migrating at barrier
//! releases, §2.7.4). The engine repeatedly picks the runnable core with
//! the smallest ready time (the [`sched`](crate::sched) ready-heap) and
//! executes its next *step* to completion — either a memory access
//! (timed through the coherent
//! [`MemorySystem`](crate::memsys::MemorySystem)) or a control action of
//! a synchronization primitive. The sibling modules own the rest of the
//! kernel:
//!
//! * [`syncexp`](crate::syncexp) — the §3.4 sync-op → labeled-access
//!   expansion (lock/unlock, flags, sense-reversing barriers);
//! * [`inject`](crate::inject) — the removable/release dynamic
//!   numbering streams fault injection removes from (§3.4);
//! * [`sched`](crate::sched) — ready-core selection and core
//!   assignment (threads may outnumber cores, §2.4);
//! * [`migrate`](crate::migrate) — barrier-release migration and the
//!   §2.7.4 resynchronization bump;
//! * [`errors`](crate::errors) — abort diagnostics ([`SimError`]).
//!
//! This module keeps only the state ([`Machine`]), the step loop
//! ([`Machine::run`]), and the timed access path ([`Machine::do_access`]
//! internally), which charges observer traffic on the timestamp bus.

use crate::config::MachineConfig;
use crate::memsys::{MemEvent, MemorySystem};
use crate::observer::{AccessEvent, AccessKind, AccessPath, CoreId, MemoryObserver};
use crate::sched::ReadyQueue;
use crate::stats::SimStats;
use crate::sync::SyncManager;
use crate::syncexp::Step;
use crate::truth::{GroundTruth, TruthSummary};
use cord_obs::{BusKind, EventKind, TraceEvent, TraceHandle, NO_THREAD};
use cord_trace::program::Workload;
use cord_trace::types::{Addr, ThreadId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};

pub use crate::errors::{SimError, StuckState, ThreadDiag};
pub use crate::inject::InjectionPlan;

/// Everything a run produces besides the observer itself.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Timing and traffic statistics.
    pub stats: SimStats,
    /// Functional outcome (per-thread hashes, optional resolved streams).
    pub truth: TruthSummary,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Ready,
    BlockedOnLock,
    BlockedOnFlag,
    Done,
}

#[derive(Debug)]
pub(crate) struct CoreCtx {
    pub(crate) thread: ThreadId,
    pub(crate) op_idx: usize,
    pub(crate) steps: VecDeque<Step>,
    pub(crate) status: Status,
    pub(crate) ready_at: u64,
    pub(crate) instr: u64,
    pub(crate) skip_unlocks: HashSet<u32>,
    pub(crate) barrier_lock_skipped: bool,
    pub(crate) finish: u64,
    /// What this thread is waiting for right now (diagnostics only).
    pub(crate) stuck: StuckState,
}

impl CoreCtx {
    fn new(thread: ThreadId) -> Self {
        CoreCtx {
            thread,
            op_idx: 0,
            steps: VecDeque::new(),
            status: Status::Ready,
            ready_at: 0,
            instr: 0,
            skip_unlocks: HashSet::new(),
            barrier_lock_skipped: false,
            finish: 0,
            stuck: StuckState::Runnable,
        }
    }
}

/// A configured machine ready to run one workload with one observer.
pub struct Machine<'w, O: MemoryObserver> {
    pub(crate) cfg: MachineConfig,
    pub(crate) workload: &'w Workload,
    pub(crate) observer: O,
    pub(crate) memsys: MemorySystem,
    pub(crate) sync: SyncManager,
    /// Per-thread execution contexts (indexed by thread id).
    pub(crate) ctxs: Vec<CoreCtx>,
    /// Which core each thread currently runs on (None = waiting for a
    /// core; threads may outnumber cores, §2.4).
    pub(crate) core_of: Vec<Option<usize>>,
    /// The core each thread last ran on (to detect migrations, §2.7.4).
    pub(crate) last_core: Vec<Option<usize>>,
    /// The thread each core last ran. A thread rescheduled onto its old
    /// core after a *different* thread used it still needs the §2.7.4
    /// resynchronization — the core's caches now carry the other
    /// thread's timestamps, and co-resident conflicts are exempt from
    /// race checks, so only the bump orders them for replay.
    pub(crate) core_last_thread: Vec<Option<usize>>,
    /// Cores with no thread currently scheduled.
    pub(crate) free_cores: Vec<usize>,
    /// Lazy min-heap over runnable scheduled threads.
    pub(crate) ready: ReadyQueue,
    pub(crate) truth: GroundTruth,
    pub(crate) stats: SimStats,
    rng: SmallRng,
    pub(crate) plan: InjectionPlan,
    pub(crate) next_instance: u64,
    pub(crate) next_release_instance: u64,
    /// Cycle of the most recent workload-op fetch (watchdog progress).
    pub(crate) last_progress: u64,
    pub(crate) pending_migration: bool,
    /// Run-event trace sink; disabled (a single branch per site) unless
    /// installed with [`Machine::with_trace`].
    pub(crate) trace: TraceHandle,
}

impl<'w, O: MemoryObserver> Machine<'w, O> {
    /// Builds a machine for `workload` with the given observer, seed
    /// (scheduling jitter), and injection plan.
    ///
    /// Threads may outnumber cores (§2.4): surplus threads wait for a
    /// core and are scheduled on demand, paying the reschedule penalty
    /// and the §2.7.4 resynchronization.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails validation or the machine
    /// configuration is inconsistent.
    pub fn new(
        cfg: MachineConfig,
        workload: &'w Workload,
        observer: O,
        seed: u64,
        plan: InjectionPlan,
    ) -> Self {
        cfg.validate();
        workload
            .validate()
            .expect("workload failed structural validation");
        let n = workload.num_threads();
        let layout = workload.layout();
        let sync = SyncManager::new(
            layout.total_locks(),
            layout.total_flags(),
            layout.barriers(),
            n,
        )
        .with_atomics(layout.user_atomics());
        let ctxs = (0..n).map(|t| CoreCtx::new(ThreadId(t as u16))).collect();
        let truth = GroundTruth::new(n, cfg.capture_resolved);
        let core_of: Vec<Option<usize>> = (0..n)
            .map(|t| if t < cfg.cores { Some(t) } else { None })
            .collect();
        let free_cores: Vec<usize> = (n.min(cfg.cores)..cfg.cores).collect();
        let core_last_thread: Vec<Option<usize>> =
            (0..cfg.cores).map(|c| (c < n).then_some(c)).collect();
        let mut ready = ReadyQueue::new();
        for (t, core) in core_of.iter().enumerate() {
            if core.is_some() {
                ready.push(0, t);
            }
        }
        Machine {
            memsys: MemorySystem::new(cfg.clone()),
            last_core: core_of.clone(),
            core_last_thread,
            core_of,
            free_cores,
            ready,
            cfg,
            workload,
            observer,
            sync,
            ctxs,
            truth,
            stats: SimStats::default(),
            rng: SmallRng::seed_from_u64(seed),
            plan,
            next_instance: 0,
            next_release_instance: 0,
            last_progress: 0,
            pending_migration: false,
            trace: TraceHandle::disabled(),
        }
    }

    /// Installs a run-event trace sink. The default is the disabled
    /// handle, which keeps every emission site to a single branch.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Runs to completion, returning the output and the observer.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] — no core can make progress while
    ///   threads remain unfinished (reachable only under injection).
    /// * [`SimError::Livelock`] — the configured watchdog's progress
    ///   window elapsed with no thread fetching a new workload op
    ///   (spin-wait hangs).
    /// * [`SimError::CycleBudgetExceeded`] — simulated time passed the
    ///   watchdog's total budget.
    pub fn run(mut self) -> Result<(RunOutput, O), SimError> {
        loop {
            if self.pending_migration {
                self.pending_migration = false;
                self.rotate_threads();
            }
            let next = self.next_ready();
            #[cfg(debug_assertions)]
            self.assert_pick_matches_scan(next);
            match next {
                Some(t) => {
                    if let Some(err) = self.watchdog_check(self.ctxs[t].ready_at) {
                        return Err(err);
                    }
                    loop {
                        let at = self.ctxs[t].ready_at;
                        let heap_len = self.ready.len();
                        self.step_core(t);
                        // Same-thread fast path: if the step left this
                        // thread Ready on its core at an unchanged
                        // ready time, pushed nothing onto the ready
                        // heap, and requested no migration, then
                        // re-pushing `(at, t)` and popping would return
                        // `(at, t)` itself — it was the heap's minimum
                        // when popped, every surviving entry is still
                        // `>= (at, t)`, and no new entry appeared (heap
                        // pushes are the only way another thread's key
                        // can change). Skipping the round-trip is
                        // therefore bit-identical to the slow path; the
                        // watchdog re-check is also a no-op because the
                        // simulated time `at` did not advance.
                        let fast = self.ctxs[t].status == Status::Ready
                            && self.ctxs[t].ready_at == at
                            && !self.pending_migration
                            && self.ready.len() == heap_len
                            && self.core_of[t].is_some();
                        if !fast {
                            break;
                        }
                        #[cfg(debug_assertions)]
                        self.assert_pick_matches_scan(Some(t));
                    }
                    // A finished thread frees its core; a *blocked*
                    // thread keeps it until another thread actually
                    // needs one (so with threads <= cores everything
                    // stays pinned, and with more threads than cores the
                    // scheduler preempts blocked holders on demand —
                    // "real systems may have many more threads than
                    // processors", §2.4).
                    if self.ctxs[t].status == Status::Done {
                        self.release_core(t);
                    } else if self.ctxs[t].status == Status::Ready && self.core_of[t].is_some() {
                        self.ready.push(self.ctxs[t].ready_at, t);
                    }
                }
                None => {
                    if self.ctxs.iter().all(|c| c.status == Status::Done) {
                        break;
                    }
                    // Ready threads without cores + free cores => schedule.
                    if self.schedule_waiting_threads() {
                        continue;
                    }
                    let cycle = self.ctxs.iter().map(|c| c.ready_at).max().unwrap_or(0);
                    return Err(SimError::Deadlock {
                        cycle,
                        stuck_threads: self.diagnostics(),
                    });
                }
            }
        }
        Ok(self.finish())
    }

    fn finish(mut self) -> (RunOutput, O) {
        let n = self.ctxs.len();
        let mut instr_counts = vec![0u64; n];
        let mut per_core = vec![0u64; n];
        for (i, c) in self.ctxs.iter().enumerate() {
            instr_counts[c.thread.index()] = c.instr;
            per_core[i] = c.finish;
        }
        self.stats.cycles = per_core.iter().copied().max().unwrap_or(0);
        self.stats.per_core_cycles = per_core;
        self.stats.instr_counts = instr_counts.clone();
        self.stats.data_bus_busy = self.memsys.buses.data.busy_cycles();
        self.stats.data_bus_wait = self.memsys.buses.data.contention_cycles();
        self.stats.addr_bus_busy = self.memsys.buses.addr.busy_cycles();
        self.stats.addr_bus_wait = self.memsys.buses.addr.contention_cycles();
        self.stats.mem_bus_busy = self.memsys.buses.mem.busy_cycles();
        self.stats.ts_bus_busy = self.memsys.buses.ts.busy_cycles();
        let coh = self.memsys.coherence_stats();
        self.stats.directory_lookups = coh.directory_lookups;
        self.stats.directory_forwards = coh.directory_forwards;
        self.stats.directory_home_busy = coh.home_busy_cycles;
        self.stats.directory_home_wait = coh.home_wait_cycles;
        self.observer.on_run_end(&instr_counts);
        (
            RunOutput {
                stats: self.stats,
                truth: self.truth.into_summary(),
            },
            self.observer,
        )
    }

    /// Snapshot of every unfinished thread for error reports.
    pub(crate) fn diagnostics(&self) -> Vec<ThreadDiag> {
        self.ctxs
            .iter()
            .filter(|c| c.status != Status::Done)
            .map(|c| ThreadDiag {
                thread: c.thread,
                state: c.stuck,
                op_idx: c.op_idx,
                ops_total: self.workload.thread(c.thread).ops().len(),
                instr: c.instr,
                ready_at: c.ready_at,
            })
            .collect()
    }

    /// Evaluates the watchdog at simulated time `now` (the ready time
    /// of the thread about to step). Returns the error to abort with,
    /// if any limit tripped.
    fn watchdog_check(&self, now: u64) -> Option<SimError> {
        let wd = &self.cfg.watchdog;
        if let Some(budget) = wd.max_cycles {
            if now > budget {
                return Some(SimError::CycleBudgetExceeded {
                    cycle: now,
                    budget,
                    stuck_threads: self.diagnostics(),
                });
            }
        }
        if let Some(window) = wd.progress_window {
            if now.saturating_sub(self.last_progress) > window {
                return Some(SimError::Livelock {
                    cycle: now,
                    last_progress_cycle: self.last_progress,
                    stuck_threads: self.diagnostics(),
                });
            }
        }
        None
    }

    fn step_core(&mut self, c: usize) {
        if let Some(step) = self.ctxs[c].steps.pop_front() {
            self.exec_step(c, step);
            return;
        }
        let thread = self.ctxs[c].thread;
        let op_idx = self.ctxs[c].op_idx;
        let prog = self.workload.thread(thread);
        match prog.ops().get(op_idx) {
            None => {
                let ctx = &mut self.ctxs[c];
                ctx.status = Status::Done;
                ctx.finish = ctx.ready_at;
                self.last_progress = self.last_progress.max(ctx.finish);
            }
            Some(op) => {
                // Fetching a new workload op is the watchdog's notion of
                // progress: spin re-polls never reach here.
                self.last_progress = self.last_progress.max(self.ctxs[c].ready_at);
                self.ctxs[c].op_idx += 1;
                self.expand_op(c, *op);
            }
        }
    }

    /// Executes one timed memory access; returns its completion cycle.
    pub(crate) fn do_access(&mut self, c: usize, addr: Addr, kind: AccessKind) -> u64 {
        let jitter = if self.cfg.jitter_cycles > 0 {
            u64::from(self.rng.gen_range(0..=self.cfg.jitter_cycles))
        } else {
            0
        };
        let core = CoreId(self.core_of[c].expect("running thread has a core") as u8);
        let thread = self.ctxs[c].thread;
        let start = self.ctxs[c].ready_at + jitter;
        let res = self.memsys.access(core, addr, kind.is_write(), start);

        // Requester-side events (fills, capacity victims) precede the
        // access; remote *invalidations* are part of the access's own
        // bus transaction, whose snoop race-checks must see the
        // victimized histories — so those are delivered after
        // `on_access` (§2.7.2: "snooping hits in other caches result in
        // data race checks").
        if res.path.has_bus_transaction() {
            self.trace.emit(|| TraceEvent {
                cycle: start,
                thread: thread.0,
                kind: EventKind::Bus {
                    bus: match res.path {
                        AccessPath::FillFromMemory => BusKind::Mem,
                        AccessPath::FillFromSibling(_) => BusKind::Data,
                        _ => BusKind::Addr,
                    },
                    line: addr.line().0,
                },
            });
        }
        for ev in &res.events {
            match ev {
                MemEvent::Removed(rm)
                    if rm.cause != crate::observer::RemovalCause::Invalidation =>
                {
                    self.trace_removal(rm, res.done);
                    let out = self.observer.on_line_removed(rm);
                    self.charge_observer(out, res.done);
                }
                MemEvent::Filled { core, level, line } => {
                    self.trace.emit(|| TraceEvent {
                        cycle: res.done,
                        thread: thread.0,
                        kind: EventKind::Fill {
                            core: core.0,
                            level: match level {
                                crate::observer::Level::L1 => 1,
                                crate::observer::Level::L2 => 2,
                            },
                            line: line.0,
                        },
                    });
                    self.observer.on_line_filled(*core, *level, *line);
                }
                MemEvent::Removed(_) => {}
            }
        }

        let instr_index = self.ctxs[c].instr;
        let ev = AccessEvent {
            core,
            thread,
            addr,
            kind,
            path: res.path,
            instr_index,
            cycle: start,
        };
        let out = self.observer.on_access(&ev);
        if out.race_check_requests > 0 {
            self.trace.emit(|| TraceEvent {
                cycle: start,
                thread: thread.0,
                kind: EventKind::RaceCheck {
                    line: addr.line().0,
                    requests: out.race_check_requests,
                },
            });
        }
        if out.posted_transactions > 0 {
            self.trace.emit(|| TraceEvent {
                cycle: start,
                thread: thread.0,
                kind: EventKind::MemtsBroadcast {
                    count: out.posted_transactions,
                },
            });
        }
        let stall = self.charge_observer(out, res.done);

        for mev in &res.events {
            if let MemEvent::Removed(rm) = mev {
                if rm.cause == crate::observer::RemovalCause::Invalidation {
                    self.trace_removal(rm, res.done);
                    let out = self.observer.on_line_removed(rm);
                    self.charge_observer(out, res.done);
                }
            }
        }

        self.truth.commit(thread, instr_index, addr, kind);
        self.ctxs[c].instr += 1;
        self.ctxs[c].ready_at = res.done + stall;

        match kind {
            AccessKind::DataRead => self.stats.data_reads += 1,
            AccessKind::DataWrite => self.stats.data_writes += 1,
            AccessKind::SyncRead => self.stats.sync_reads += 1,
            AccessKind::SyncWrite => self.stats.sync_writes += 1,
        }
        match res.path {
            AccessPath::L1Hit => self.stats.l1_hits += 1,
            AccessPath::L2Hit => self.stats.l2_hits += 1,
            AccessPath::UpgradeHit => self.stats.upgrades += 1,
            AccessPath::FillFromSibling(_) => self.stats.sibling_fills += 1,
            AccessPath::FillFromMemory => self.stats.memory_fills += 1,
        }
        res.done
    }

    /// Emits a line-removal trace event (no originating thread: the
    /// victim is picked by the cache, not by an instruction).
    fn trace_removal(&self, rm: &crate::observer::LineRemoval, at: u64) {
        self.trace.emit(|| TraceEvent {
            cycle: at,
            thread: NO_THREAD,
            kind: EventKind::Remove {
                core: rm.core.0,
                level: match rm.level {
                    crate::observer::Level::L1 => 1,
                    crate::observer::Level::L2 => 2,
                },
                line: rm.line.0,
                dirty: rm.dirty,
                invalidation: rm.cause == crate::observer::RemovalCause::Invalidation,
            },
        });
    }

    /// Charges observer-issued transactions on the timestamp bus. The
    /// processor consumes data without waiting for the CORD comparison
    /// (§3.1), but an instruction whose race check is still in flight
    /// when it would otherwise retire is delayed — so the core stalls by
    /// however far the check's completion runs past the retirement
    /// window. Posted broadcasts (memory-timestamp updates) only occupy
    /// the bus. Returns the retirement stall, which the caller adds to
    /// the core's ready time.
    fn charge_observer(&mut self, out: crate::observer::ObserverOutcome, at: u64) -> u64 {
        let slot = self.cfg.addr_bus_slot_cycles;
        let mut stall = 0;
        for _ in 0..out.race_check_requests {
            let start = self.memsys.buses.ts.acquire(at, slot);
            let done = start + slot;
            let retire_by = at + self.cfg.race_check_retire_window;
            stall = stall.max(done.saturating_sub(retire_by));
        }
        for _ in 0..out.posted_transactions {
            self.memsys.buses.ts.acquire(at, slot);
        }
        self.stats.observer_addr_transactions += u64::from(out.total());
        self.stats.retirement_stall_cycles += stall;
        stall
    }
}

// Compile-time Send audit (static_assertions style): the parallel
// injection-sweep executor constructs a `Machine` inside a pool job and
// runs it on a worker thread, and the job's closure borrows the shared
// `Workload`. If any machine internal (RNG, memory system, sync
// manager) or output type ever stops being `Send` — or `Workload`
// stops being `Sync` — sweeps would stop compiling here instead of
// breaking at the first `--jobs N` run.
#[allow(dead_code)]
fn _thread_safety_audit() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    fn machine_is_send<O: MemoryObserver + Send>() {
        send::<Machine<'static, O>>();
    }
    let _ = machine_is_send::<crate::observer::NullObserver>;
    send::<RunOutput>();
    send::<SimStats>();
    send::<SimError>();
    send::<InjectionPlan>();
    sync::<Workload>();
    sync::<MachineConfig>();
}
