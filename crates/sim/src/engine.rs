//! The discrete-event execution engine.
//!
//! Each thread runs pinned to one core (optionally migrating at barrier
//! releases, §2.7.4). The engine repeatedly picks the runnable core with
//! the smallest ready time and executes its next *step* to completion —
//! either a memory access (timed through the coherent
//! [`MemorySystem`](crate::memsys::MemorySystem)) or a control action of
//! a synchronization primitive. Synchronization ops from the workload
//! expand into the labeled access sequences the paper's modified
//! synchronization libraries emit:
//!
//! * `lock`: a sync read of the lock word, then a sync write that takes
//!   it (blocked acquirers re-read on wake, observing the releaser's sync
//!   write — this is the race outcome that orders release before
//!   acquire);
//! * `unlock` / `flag set` / `flag reset`: one sync write;
//! * `flag wait`: a sync read; if unset, block and re-read on wake;
//! * `barrier`: lock + counter read/update + (last arrival: counter
//!   reset, next-flag reset, current-flag set) + unlock + flag wait, the
//!   sense-reversing mutex+flag composition of §3.4.
//!
//! Fault injection (§3.4) removes the Nth dynamic *removable* sync
//! instance — a lock call (with its matching unlock) or a flag-wait call;
//! barrier-internal instances are individually removable, which is what
//! makes the injected errors elusive. The functional arrival counting in
//! [`SyncManager`](crate::sync::SyncManager) still completes, so runs
//! always terminate; only the ordering (and the accesses) disappear.

use crate::config::MachineConfig;
use crate::memsys::{MemEvent, MemorySystem};
use crate::observer::{AccessEvent, AccessKind, AccessPath, CoreId, MemoryObserver};
use crate::stats::SimStats;
use crate::sync::SyncManager;
use crate::truth::{GroundTruth, TruthSummary};
use cord_obs::{BusKind, EventKind, TraceEvent, TraceHandle, NO_THREAD};
use cord_trace::op::Op;
use cord_trace::program::Workload;
use cord_trace::types::{Addr, BarrierId, FlagId, LockId, ThreadId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Which dynamic synchronization instance (if any) to remove (§3.4).
///
/// Two independent dynamic numbering streams exist:
///
/// * *removable* (wait-side) instances — lock calls (with their
///   matching unlock), flag waits, and barrier-internal instances;
/// * *release* instances — flag sets, including the barrier release's
///   internal flag set.
///
/// Removing a wait leaves the releaser unaffected (a race appears);
/// removing a release can leave the waiter stuck — a deadlock under
/// blocking waits, a livelock under spin waits
/// ([`MachineConfig::flag_spin_cycles`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Zero-based index (in dynamic dispatch order) of the removable
    /// wait-side sync instance to remove; `None` removes no wait.
    pub remove_instance: Option<u64>,
    /// Zero-based index (in dynamic execution order) of the release
    /// (flag-set) instance to remove; `None` removes no release.
    pub remove_release: Option<u64>,
}

impl InjectionPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Remove the `n`-th dynamic removable (wait-side) sync instance.
    pub fn remove_nth(n: u64) -> Self {
        InjectionPlan {
            remove_instance: Some(n),
            remove_release: None,
        }
    }

    /// Remove the `n`-th dynamic release (flag-set) instance.
    pub fn remove_release_nth(n: u64) -> Self {
        InjectionPlan {
            remove_instance: None,
            remove_release: Some(n),
        }
    }

    /// Whether this plan removes anything at all.
    pub fn is_injecting(&self) -> bool {
        self.remove_instance.is_some() || self.remove_release.is_some()
    }
}

/// Why a thread had not finished when a run aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckState {
    /// Ready to run (it had work left but the run was cut short).
    Runnable,
    /// Parked waiting for a lock release.
    BlockedOnLock(LockId),
    /// Parked waiting for a flag set.
    BlockedOnFlag(FlagId),
    /// Busily re-polling an unset flag (spin-wait mode).
    SpinningOnFlag(FlagId),
}

impl fmt::Display for StuckState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckState::Runnable => write!(f, "runnable"),
            StuckState::BlockedOnLock(l) => write!(f, "blocked on lock {}", l.0),
            StuckState::BlockedOnFlag(g) => write!(f, "blocked on flag {}", g.0),
            StuckState::SpinningOnFlag(g) => write!(f, "spinning on flag {}", g.0),
        }
    }
}

/// Per-thread diagnostic snapshot attached to every [`SimError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadDiag {
    /// The unfinished thread.
    pub thread: ThreadId,
    /// What it was doing when the run aborted.
    pub state: StuckState,
    /// Workload ops it had fetched.
    pub op_idx: usize,
    /// Workload ops in its program.
    pub ops_total: usize,
    /// Instructions it had retired.
    pub instr: u64,
    /// Its local clock at abort time.
    pub ready_at: u64,
}

impl fmt::Display for ThreadDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread {} {} at op {}/{} (instr {}, cycle {})",
            self.thread.index(),
            self.state,
            self.op_idx,
            self.ops_total,
            self.instr,
            self.ready_at
        )
    }
}

/// Simulation failure.
///
/// Every variant carries per-thread stuck-state diagnostics so sweep
/// failure records can say *which* threads were wedged and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No core can make progress but not all threads finished.
    Deadlock {
        /// Cycle of the stall.
        cycle: u64,
        /// Unfinished threads and what they were stuck on.
        stuck_threads: Vec<ThreadDiag>,
    },
    /// Threads kept executing (e.g. spin polls) but none fetched a new
    /// workload op within the watchdog's progress window.
    Livelock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Cycle of the last genuine progress (a workload-op fetch).
        last_progress_cycle: u64,
        /// Unfinished threads and what they were stuck on.
        stuck_threads: Vec<ThreadDiag>,
    },
    /// Simulated time exceeded the watchdog's total cycle budget.
    CycleBudgetExceeded {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The configured budget.
        budget: u64,
        /// Unfinished threads and what they were stuck on.
        stuck_threads: Vec<ThreadDiag>,
    },
}

impl SimError {
    /// Cycle at which the run aborted.
    pub fn cycle(&self) -> u64 {
        match self {
            SimError::Deadlock { cycle, .. }
            | SimError::Livelock { cycle, .. }
            | SimError::CycleBudgetExceeded { cycle, .. } => *cycle,
        }
    }

    /// The per-thread diagnostics, regardless of variant.
    pub fn stuck_threads(&self) -> &[ThreadDiag] {
        match self {
            SimError::Deadlock { stuck_threads, .. }
            | SimError::Livelock { stuck_threads, .. }
            | SimError::CycleBudgetExceeded { stuck_threads, .. } => stuck_threads,
        }
    }

    /// Short machine-readable kind name ("deadlock" / "livelock" /
    /// "cycle-budget-exceeded"), used in sweep failure records.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::Livelock { .. } => "livelock",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget-exceeded",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                stuck_threads,
            } => write!(
                f,
                "deadlock at cycle {cycle}: {} thread(s) stuck",
                stuck_threads.len()
            ),
            SimError::Livelock {
                cycle,
                last_progress_cycle,
                stuck_threads,
            } => write!(
                f,
                "livelock at cycle {cycle}: no progress since cycle \
                 {last_progress_cycle}, {} thread(s) stuck",
                stuck_threads.len()
            ),
            SimError::CycleBudgetExceeded {
                cycle,
                budget,
                stuck_threads,
            } => write!(
                f,
                "cycle budget {budget} exceeded at cycle {cycle}: \
                 {} thread(s) unfinished",
                stuck_threads.len()
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Everything a run produces besides the observer itself.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Timing and traffic statistics.
    pub stats: SimStats,
    /// Functional outcome (per-thread hashes, optional resolved streams).
    pub truth: TruthSummary,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Access { addr: Addr, kind: AccessKind },
    LockSpin(LockId),
    LockGranted(LockId),
    LockTake(LockId),
    Release(LockId),
    SetFlag(FlagId),
    ResetFlag(FlagId),
    WaitFlag(FlagId),
    BarrierCtl(BarrierId),
    BarrierWait(BarrierId, u64),
    BarrierUnlock(BarrierId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    BlockedOnLock,
    BlockedOnFlag,
    Done,
}

#[derive(Debug)]
struct CoreCtx {
    thread: ThreadId,
    op_idx: usize,
    steps: VecDeque<Step>,
    status: Status,
    ready_at: u64,
    instr: u64,
    skip_unlocks: HashSet<u32>,
    barrier_lock_skipped: bool,
    finish: u64,
    /// What this thread is waiting for right now (diagnostics only).
    stuck: StuckState,
}

impl CoreCtx {
    fn new(thread: ThreadId) -> Self {
        CoreCtx {
            thread,
            op_idx: 0,
            steps: VecDeque::new(),
            status: Status::Ready,
            ready_at: 0,
            instr: 0,
            skip_unlocks: HashSet::new(),
            barrier_lock_skipped: false,
            finish: 0,
            stuck: StuckState::Runnable,
        }
    }
}

/// A configured machine ready to run one workload with one observer.
pub struct Machine<'w, O: MemoryObserver> {
    cfg: MachineConfig,
    workload: &'w Workload,
    observer: O,
    memsys: MemorySystem,
    sync: SyncManager,
    /// Per-thread execution contexts (indexed by thread id).
    ctxs: Vec<CoreCtx>,
    /// Which core each thread currently runs on (None = waiting for a
    /// core; threads may outnumber cores, §2.4).
    core_of: Vec<Option<usize>>,
    /// The core each thread last ran on (to detect migrations, §2.7.4).
    last_core: Vec<Option<usize>>,
    /// The thread each core last ran. A thread rescheduled onto its old
    /// core after a *different* thread used it still needs the §2.7.4
    /// resynchronization — the core's caches now carry the other
    /// thread's timestamps, and co-resident conflicts are exempt from
    /// race checks, so only the bump orders them for replay.
    core_last_thread: Vec<Option<usize>>,
    /// Cores with no thread currently scheduled.
    free_cores: Vec<usize>,
    truth: GroundTruth,
    stats: SimStats,
    rng: SmallRng,
    plan: InjectionPlan,
    next_instance: u64,
    next_release_instance: u64,
    /// Cycle of the most recent workload-op fetch (watchdog progress).
    last_progress: u64,
    pending_migration: bool,
    /// Run-event trace sink; disabled (a single branch per site) unless
    /// installed with [`Machine::with_trace`].
    trace: TraceHandle,
}

impl<'w, O: MemoryObserver> Machine<'w, O> {
    /// Builds a machine for `workload` with the given observer, seed
    /// (scheduling jitter), and injection plan.
    ///
    /// # Panics
    ///
    /// Panics if the workload has more threads than the machine has
    /// cores, or fails validation.
    pub fn new(
        cfg: MachineConfig,
        workload: &'w Workload,
        observer: O,
        seed: u64,
        plan: InjectionPlan,
    ) -> Self {
        cfg.validate();
        workload
            .validate()
            .expect("workload failed structural validation");
        let n = workload.num_threads();
        let layout = workload.layout();
        let sync = SyncManager::new(
            layout.total_locks(),
            layout.total_flags(),
            layout.barriers(),
            n,
        );
        let ctxs = (0..n).map(|t| CoreCtx::new(ThreadId(t as u16))).collect();
        let truth = GroundTruth::new(n, cfg.capture_resolved);
        let core_of: Vec<Option<usize>> = (0..n)
            .map(|t| if t < cfg.cores { Some(t) } else { None })
            .collect();
        let free_cores: Vec<usize> = (n.min(cfg.cores)..cfg.cores).collect();
        let core_last_thread: Vec<Option<usize>> =
            (0..cfg.cores).map(|c| (c < n).then_some(c)).collect();
        Machine {
            memsys: MemorySystem::new(cfg.clone()),
            last_core: core_of.clone(),
            core_last_thread,
            core_of,
            free_cores,
            cfg,
            workload,
            observer,
            sync,
            ctxs,
            truth,
            stats: SimStats::default(),
            rng: SmallRng::seed_from_u64(seed),
            plan,
            next_instance: 0,
            next_release_instance: 0,
            last_progress: 0,
            pending_migration: false,
            trace: TraceHandle::disabled(),
        }
    }

    /// Installs a run-event trace sink. The default is the disabled
    /// handle, which keeps every emission site to a single branch.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Runs to completion, returning the output and the observer.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] — no core can make progress while
    ///   threads remain unfinished (reachable only under injection).
    /// * [`SimError::Livelock`] — the configured watchdog's progress
    ///   window elapsed with no thread fetching a new workload op
    ///   (spin-wait hangs).
    /// * [`SimError::CycleBudgetExceeded`] — simulated time passed the
    ///   watchdog's total budget.
    pub fn run(mut self) -> Result<(RunOutput, O), SimError> {
        loop {
            if self.pending_migration {
                self.pending_migration = false;
                self.rotate_threads();
            }
            let next = self
                .ctxs
                .iter()
                .enumerate()
                .filter(|(i, c)| c.status == Status::Ready && self.core_of[*i].is_some())
                .min_by_key(|(i, c)| (c.ready_at, *i))
                .map(|(i, _)| i);
            match next {
                Some(t) => {
                    if let Some(err) = self.watchdog_check(self.ctxs[t].ready_at) {
                        return Err(err);
                    }
                    self.step_core(t);
                    // A finished thread frees its core; a *blocked*
                    // thread keeps it until another thread actually
                    // needs one (so with threads <= cores everything
                    // stays pinned, and with more threads than cores the
                    // scheduler preempts blocked holders on demand —
                    // "real systems may have many more threads than
                    // processors", §2.4).
                    if self.ctxs[t].status == Status::Done {
                        self.release_core(t);
                    }
                }
                None => {
                    if self.ctxs.iter().all(|c| c.status == Status::Done) {
                        break;
                    }
                    // Ready threads without cores + free cores => schedule.
                    if self.schedule_waiting_threads() {
                        continue;
                    }
                    let cycle = self.ctxs.iter().map(|c| c.ready_at).max().unwrap_or(0);
                    return Err(SimError::Deadlock {
                        cycle,
                        stuck_threads: self.diagnostics(),
                    });
                }
            }
        }
        Ok(self.finish())
    }

    fn finish(mut self) -> (RunOutput, O) {
        let n = self.ctxs.len();
        let mut instr_counts = vec![0u64; n];
        let mut per_core = vec![0u64; n];
        for (i, c) in self.ctxs.iter().enumerate() {
            instr_counts[c.thread.index()] = c.instr;
            per_core[i] = c.finish;
        }
        self.stats.cycles = per_core.iter().copied().max().unwrap_or(0);
        self.stats.per_core_cycles = per_core;
        self.stats.instr_counts = instr_counts.clone();
        self.stats.data_bus_busy = self.memsys.buses.data.busy_cycles();
        self.stats.data_bus_wait = self.memsys.buses.data.contention_cycles();
        self.stats.addr_bus_busy = self.memsys.buses.addr.busy_cycles();
        self.stats.addr_bus_wait = self.memsys.buses.addr.contention_cycles();
        self.stats.mem_bus_busy = self.memsys.buses.mem.busy_cycles();
        self.stats.ts_bus_busy = self.memsys.buses.ts.busy_cycles();
        self.observer.on_run_end(&instr_counts);
        (
            RunOutput {
                stats: self.stats,
                truth: self.truth.into_summary(),
            },
            self.observer,
        )
    }

    /// Releases thread `t`'s core (it finished) and hands it to a
    /// waiting Ready thread, if any.
    fn release_core(&mut self, t: usize) {
        let Some(core) = self.core_of[t].take() else {
            return;
        };
        let now = self.ctxs[t].ready_at;
        self.free_cores.push(core);
        self.schedule_waiting_threads_at(now);
    }

    /// Assigns cores (free ones first, then cores preempted from blocked
    /// holders) to Ready-but-unscheduled threads. Returns `true` if any
    /// assignment happened.
    fn schedule_waiting_threads(&mut self) -> bool {
        let now = self
            .ctxs
            .iter()
            .enumerate()
            .filter(|(i, c)| c.status == Status::Ready && self.core_of[*i].is_none())
            .map(|(_, c)| c.ready_at)
            .min()
            .unwrap_or(0);
        self.schedule_waiting_threads_at(now)
    }

    fn schedule_waiting_threads_at(&mut self, now: u64) -> bool {
        let mut any = false;
        loop {
            let next = self
                .ctxs
                .iter()
                .enumerate()
                .filter(|(i, c)| c.status == Status::Ready && self.core_of[*i].is_none())
                .min_by_key(|(i, c)| (c.ready_at, *i))
                .map(|(i, _)| i);
            let Some(t) = next else { break };
            if !self.acquire_core_for(t, now) {
                break;
            }
            any = true;
        }
        any
    }

    /// Finds a core for thread `t`: a free one, or one preempted from a
    /// blocked holder. Grants it with the §2.7.4 migration bump when the
    /// core differs from the thread's previous one.
    fn acquire_core_for(&mut self, t: usize, at: u64) -> bool {
        debug_assert!(self.core_of[t].is_none());
        let core = self.free_cores.pop().or_else(|| {
            (0..self.ctxs.len())
                .find(|&v| {
                    self.core_of[v].is_some()
                        && matches!(
                            self.ctxs[v].status,
                            Status::BlockedOnLock | Status::BlockedOnFlag
                        )
                })
                .and_then(|v| self.core_of[v].take())
        });
        let Some(core) = core else {
            return false;
        };
        self.core_of[t] = Some(core);
        let ctx = &mut self.ctxs[t];
        ctx.ready_at = ctx.ready_at.max(at) + self.cfg.reschedule_cycles;
        // Resynchronize when the thread changed cores *or* the core ran
        // another thread meanwhile (same-core reschedule after
        // time-sharing): either way its caches hold timestamps the
        // incoming thread has never been ordered against.
        if self.last_core[t] != Some(core) || self.core_last_thread[core] != Some(t) {
            let from = self.last_core[t].unwrap_or(core);
            self.observer.on_thread_migrated(
                ThreadId(t as u16),
                CoreId(from as u8),
                CoreId(core as u8),
            );
            self.stats.migrations += 1;
            let when = self.ctxs[t].ready_at;
            self.trace.emit(|| TraceEvent {
                cycle: when,
                thread: t as u16,
                kind: EventKind::Migration {
                    from: from as u8,
                    to: core as u8,
                },
            });
        }
        self.last_core[t] = Some(core);
        self.core_last_thread[core] = Some(t);
        true
    }

    /// Consumes one removable-sync-instance index for thread `c`;
    /// `true` if this instance is the injection target.
    fn take_instance(&mut self, c: usize) -> bool {
        let idx = self.next_instance;
        self.next_instance += 1;
        self.stats.removable_sync_instances += 1;
        if self.plan.remove_instance == Some(idx) {
            self.stats.injection_applied = true;
            self.trace.emit(|| TraceEvent {
                cycle: self.ctxs[c].ready_at,
                thread: self.ctxs[c].thread.0,
                kind: EventKind::Injection {
                    instance: idx,
                    release: false,
                },
            });
            true
        } else {
            false
        }
    }

    /// Consumes one release-instance index (a flag set, including the
    /// barrier release's internal one) for thread `c`; `true` if it is
    /// the injection target.
    fn take_release_instance(&mut self, c: usize) -> bool {
        let idx = self.next_release_instance;
        self.next_release_instance += 1;
        self.stats.release_sync_instances += 1;
        if self.plan.remove_release == Some(idx) {
            self.stats.injection_applied = true;
            self.trace.emit(|| TraceEvent {
                cycle: self.ctxs[c].ready_at,
                thread: self.ctxs[c].thread.0,
                kind: EventKind::Injection {
                    instance: idx,
                    release: true,
                },
            });
            true
        } else {
            false
        }
    }

    /// Snapshot of every unfinished thread for error reports.
    fn diagnostics(&self) -> Vec<ThreadDiag> {
        self.ctxs
            .iter()
            .filter(|c| c.status != Status::Done)
            .map(|c| ThreadDiag {
                thread: c.thread,
                state: c.stuck,
                op_idx: c.op_idx,
                ops_total: self.workload.thread(c.thread).ops().len(),
                instr: c.instr,
                ready_at: c.ready_at,
            })
            .collect()
    }

    /// Evaluates the watchdog at simulated time `now` (the ready time
    /// of the thread about to step). Returns the error to abort with,
    /// if any limit tripped.
    fn watchdog_check(&self, now: u64) -> Option<SimError> {
        let wd = &self.cfg.watchdog;
        if let Some(budget) = wd.max_cycles {
            if now > budget {
                return Some(SimError::CycleBudgetExceeded {
                    cycle: now,
                    budget,
                    stuck_threads: self.diagnostics(),
                });
            }
        }
        if let Some(window) = wd.progress_window {
            if now.saturating_sub(self.last_progress) > window {
                return Some(SimError::Livelock {
                    cycle: now,
                    last_progress_cycle: self.last_progress,
                    stuck_threads: self.diagnostics(),
                });
            }
        }
        None
    }

    fn step_core(&mut self, c: usize) {
        if let Some(step) = self.ctxs[c].steps.pop_front() {
            self.exec_step(c, step);
            return;
        }
        let thread = self.ctxs[c].thread;
        let op_idx = self.ctxs[c].op_idx;
        let prog = self.workload.thread(thread);
        match prog.ops().get(op_idx) {
            None => {
                let ctx = &mut self.ctxs[c];
                ctx.status = Status::Done;
                ctx.finish = ctx.ready_at;
                self.last_progress = self.last_progress.max(ctx.finish);
            }
            Some(op) => {
                // Fetching a new workload op is the watchdog's notion of
                // progress: spin re-polls never reach here.
                self.last_progress = self.last_progress.max(self.ctxs[c].ready_at);
                self.ctxs[c].op_idx += 1;
                self.expand_op(c, *op);
            }
        }
    }

    fn expand_op(&mut self, c: usize, op: Op) {
        let layout = self.workload.layout();
        match op {
            Op::Read(a) => self.ctxs[c].steps.push_back(Step::Access {
                addr: a,
                kind: AccessKind::DataRead,
            }),
            Op::Write(a) => self.ctxs[c].steps.push_back(Step::Access {
                addr: a,
                kind: AccessKind::DataWrite,
            }),
            Op::Compute(n) => {
                let ctx = &mut self.ctxs[c];
                ctx.ready_at += u64::from(n);
                ctx.instr += u64::from(n);
            }
            Op::Lock(l) => {
                if self.take_instance(c) {
                    self.ctxs[c].skip_unlocks.insert(l.0);
                } else {
                    self.ctxs[c].steps.push_back(Step::LockSpin(l));
                }
            }
            Op::Unlock(l) => {
                if !self.ctxs[c].skip_unlocks.remove(&l.0) {
                    self.ctxs[c].steps.push_back(Step::Release(l));
                }
            }
            Op::FlagSet(g) => self.ctxs[c].steps.push_back(Step::SetFlag(g)),
            Op::FlagReset(g) => self.ctxs[c].steps.push_back(Step::ResetFlag(g)),
            Op::FlagWait(g) => {
                if !self.take_instance(c) {
                    self.ctxs[c].steps.push_back(Step::WaitFlag(g));
                }
            }
            Op::Barrier(b) => {
                let counter = layout.barrier_counter_addr(b);
                if self.take_instance(c) {
                    self.ctxs[c].barrier_lock_skipped = true;
                } else {
                    let bl = layout.barrier_lock(b);
                    self.ctxs[c].steps.push_back(Step::LockSpin(bl));
                }
                let ctx = &mut self.ctxs[c];
                ctx.steps.push_back(Step::Access {
                    addr: counter,
                    kind: AccessKind::DataRead,
                });
                ctx.steps.push_back(Step::Access {
                    addr: counter,
                    kind: AccessKind::DataWrite,
                });
                ctx.steps.push_back(Step::BarrierCtl(b));
            }
        }
    }

    fn exec_step(&mut self, c: usize, step: Step) {
        let layout = *self.workload.layout();
        match step {
            Step::Access { addr, kind } => {
                self.do_access(c, addr, kind);
            }
            Step::LockSpin(l) => {
                self.do_access(c, layout.lock_addr(l), AccessKind::SyncRead);
                let thread = self.ctxs[c].thread;
                if self.sync.try_acquire(l, thread) {
                    self.ctxs[c].steps.push_front(Step::LockTake(l));
                } else {
                    self.ctxs[c].status = Status::BlockedOnLock;
                    self.ctxs[c].stuck = StuckState::BlockedOnLock(l);
                }
            }
            Step::LockGranted(l) => {
                // Woken by a release that transferred us the lock: the
                // re-read observes the releaser's sync write, which is
                // the race outcome ordering release before acquire.
                self.do_access(c, layout.lock_addr(l), AccessKind::SyncRead);
                self.ctxs[c].steps.push_front(Step::LockTake(l));
            }
            Step::LockTake(l) => {
                self.do_access(c, layout.lock_addr(l), AccessKind::SyncWrite);
            }
            Step::Release(l) => {
                let done = self.do_access(c, layout.lock_addr(l), AccessKind::SyncWrite);
                let thread = self.ctxs[c].thread;
                if let Some(next) = self.sync.release(l, thread) {
                    self.wake(next, done, Step::LockGranted(l));
                }
            }
            Step::SetFlag(g) => {
                if self.take_release_instance(c) {
                    // Removed release (§3.4 extended to the release
                    // side): the flag write never happens and no waiter
                    // is woken. Blocking waiters deadlock; spinning
                    // waiters livelock until the watchdog fires.
                    return;
                }
                let done = self.do_access(c, layout.flag_addr(g), AccessKind::SyncWrite);
                for tid in self.sync.flag_set(g) {
                    self.wake(tid, done, Step::WaitFlag(g));
                }
            }
            Step::ResetFlag(g) => {
                self.do_access(c, layout.flag_addr(g), AccessKind::SyncWrite);
                self.sync.flag_reset(g);
            }
            Step::WaitFlag(g) => {
                self.do_access(c, layout.flag_addr(g), AccessKind::SyncRead);
                if !self.sync.flag_is_set(g) {
                    if let Some(spin) = self.cfg.flag_spin_cycles {
                        // Spin-wait: stay Ready and re-poll after a
                        // back-off. The thread burns cycles without
                        // fetching new ops, so a never-set flag shows
                        // up as a livelock, not a deadlock.
                        let ctx = &mut self.ctxs[c];
                        ctx.ready_at += spin;
                        ctx.steps.push_front(Step::WaitFlag(g));
                        ctx.stuck = StuckState::SpinningOnFlag(g);
                    } else {
                        let thread = self.ctxs[c].thread;
                        self.sync.flag_enqueue(g, thread);
                        self.ctxs[c].status = Status::BlockedOnFlag;
                        self.ctxs[c].stuck = StuckState::BlockedOnFlag(g);
                    }
                } else {
                    self.ctxs[c].stuck = StuckState::Runnable;
                }
            }
            Step::BarrierCtl(b) => {
                let thread = self.ctxs[c].thread;
                let arrival = self.sync.barrier_arrive(b, thread);
                let (f0, f1) = layout.barrier_flags(b);
                let cur = if arrival.episode.is_multiple_of(2) {
                    f0
                } else {
                    f1
                };
                let next = if arrival.episode.is_multiple_of(2) {
                    f1
                } else {
                    f0
                };
                let ctx = &mut self.ctxs[c];
                if arrival.is_last {
                    // Reset the counter, arm the next episode's flag,
                    // release this episode, drop the internal lock.
                    ctx.steps.push_front(Step::BarrierUnlock(b));
                    ctx.steps.push_front(Step::SetFlag(cur));
                    ctx.steps.push_front(Step::ResetFlag(next));
                    ctx.steps.push_front(Step::Access {
                        addr: layout.barrier_counter_addr(b),
                        kind: AccessKind::DataWrite,
                    });
                    if self.cfg.migrate_at_barriers {
                        self.pending_migration = true;
                    }
                } else {
                    ctx.steps.push_front(Step::BarrierWait(b, arrival.episode));
                    ctx.steps.push_front(Step::BarrierUnlock(b));
                }
            }
            Step::BarrierWait(b, episode) => {
                if !self.take_instance(c) {
                    let (f0, f1) = layout.barrier_flags(b);
                    let flag = if episode % 2 == 0 { f0 } else { f1 };
                    self.ctxs[c].steps.push_front(Step::WaitFlag(flag));
                }
            }
            Step::BarrierUnlock(b) => {
                if self.ctxs[c].barrier_lock_skipped {
                    self.ctxs[c].barrier_lock_skipped = false;
                } else {
                    self.ctxs[c]
                        .steps
                        .push_front(Step::Release(layout.barrier_lock(b)));
                }
            }
        }
    }

    /// Wakes `thread` at time `at`, prepending `resume` to its steps; if
    /// the thread lost its core while blocked, it queues for the next
    /// free one.
    fn wake(&mut self, thread: ThreadId, at: u64, resume: Step) {
        let t = thread.index();
        let ctx = &mut self.ctxs[t];
        debug_assert_ne!(ctx.status, Status::Ready, "waking a ready thread");
        ctx.status = Status::Ready;
        ctx.stuck = StuckState::Runnable;
        ctx.ready_at = ctx.ready_at.max(at);
        ctx.steps.push_front(resume);
        if self.core_of[t].is_none() {
            self.acquire_core_for(t, at);
        }
    }

    /// Executes one timed memory access; returns its completion cycle.
    fn do_access(&mut self, c: usize, addr: Addr, kind: AccessKind) -> u64 {
        let jitter = if self.cfg.jitter_cycles > 0 {
            u64::from(self.rng.gen_range(0..=self.cfg.jitter_cycles))
        } else {
            0
        };
        let core = CoreId(self.core_of[c].expect("running thread has a core") as u8);
        let thread = self.ctxs[c].thread;
        let start = self.ctxs[c].ready_at + jitter;
        let res = self.memsys.access(core, addr, kind.is_write(), start);

        // Requester-side events (fills, capacity victims) precede the
        // access; remote *invalidations* are part of the access's own
        // bus transaction, whose snoop race-checks must see the
        // victimized histories — so those are delivered after
        // `on_access` (§2.7.2: "snooping hits in other caches result in
        // data race checks").
        if res.path.has_bus_transaction() {
            self.trace.emit(|| TraceEvent {
                cycle: start,
                thread: thread.0,
                kind: EventKind::Bus {
                    bus: match res.path {
                        AccessPath::FillFromMemory => BusKind::Mem,
                        AccessPath::FillFromSibling(_) => BusKind::Data,
                        _ => BusKind::Addr,
                    },
                    line: addr.line().0,
                },
            });
        }
        for ev in &res.events {
            match ev {
                MemEvent::Removed(rm)
                    if rm.cause != crate::observer::RemovalCause::Invalidation =>
                {
                    self.trace_removal(rm, res.done);
                    let out = self.observer.on_line_removed(rm);
                    self.charge_observer(out, res.done);
                }
                MemEvent::Filled { core, level, line } => {
                    self.trace.emit(|| TraceEvent {
                        cycle: res.done,
                        thread: thread.0,
                        kind: EventKind::Fill {
                            core: core.0,
                            level: match level {
                                crate::observer::Level::L1 => 1,
                                crate::observer::Level::L2 => 2,
                            },
                            line: line.0,
                        },
                    });
                    self.observer.on_line_filled(*core, *level, *line);
                }
                MemEvent::Removed(_) => {}
            }
        }

        let instr_index = self.ctxs[c].instr;
        let ev = AccessEvent {
            core,
            thread,
            addr,
            kind,
            path: res.path,
            instr_index,
            cycle: start,
        };
        let out = self.observer.on_access(&ev);
        if out.race_check_requests > 0 {
            self.trace.emit(|| TraceEvent {
                cycle: start,
                thread: thread.0,
                kind: EventKind::RaceCheck {
                    line: addr.line().0,
                    requests: out.race_check_requests,
                },
            });
        }
        if out.posted_transactions > 0 {
            self.trace.emit(|| TraceEvent {
                cycle: start,
                thread: thread.0,
                kind: EventKind::MemtsBroadcast {
                    count: out.posted_transactions,
                },
            });
        }
        let stall = self.charge_observer(out, res.done);

        for mev in &res.events {
            if let MemEvent::Removed(rm) = mev {
                if rm.cause == crate::observer::RemovalCause::Invalidation {
                    self.trace_removal(rm, res.done);
                    let out = self.observer.on_line_removed(rm);
                    self.charge_observer(out, res.done);
                }
            }
        }

        self.truth.commit(thread, instr_index, addr, kind);
        self.ctxs[c].instr += 1;
        self.ctxs[c].ready_at = res.done + stall;

        match kind {
            AccessKind::DataRead => self.stats.data_reads += 1,
            AccessKind::DataWrite => self.stats.data_writes += 1,
            AccessKind::SyncRead => self.stats.sync_reads += 1,
            AccessKind::SyncWrite => self.stats.sync_writes += 1,
        }
        match res.path {
            AccessPath::L1Hit => self.stats.l1_hits += 1,
            AccessPath::L2Hit => self.stats.l2_hits += 1,
            AccessPath::UpgradeHit => self.stats.upgrades += 1,
            AccessPath::FillFromSibling(_) => self.stats.sibling_fills += 1,
            AccessPath::FillFromMemory => self.stats.memory_fills += 1,
        }
        res.done
    }

    /// Emits a line-removal trace event (no originating thread: the
    /// victim is picked by the cache, not by an instruction).
    fn trace_removal(&self, rm: &crate::observer::LineRemoval, at: u64) {
        self.trace.emit(|| TraceEvent {
            cycle: at,
            thread: NO_THREAD,
            kind: EventKind::Remove {
                core: rm.core.0,
                level: match rm.level {
                    crate::observer::Level::L1 => 1,
                    crate::observer::Level::L2 => 2,
                },
                line: rm.line.0,
                dirty: rm.dirty,
                invalidation: rm.cause == crate::observer::RemovalCause::Invalidation,
            },
        });
    }

    /// Charges observer-issued transactions on the timestamp bus. The
    /// processor consumes data without waiting for the CORD comparison
    /// (§3.1), but an instruction whose race check is still in flight
    /// when it would otherwise retire is delayed — so the core stalls by
    /// however far the check's completion runs past the retirement
    /// window. Posted broadcasts (memory-timestamp updates) only occupy
    /// the bus. Returns the retirement stall, which the caller adds to
    /// the core's ready time.
    fn charge_observer(&mut self, out: crate::observer::ObserverOutcome, at: u64) -> u64 {
        let slot = self.cfg.addr_bus_slot_cycles;
        let mut stall = 0;
        for _ in 0..out.race_check_requests {
            let start = self.memsys.buses.ts.acquire(at, slot);
            let done = start + slot;
            let retire_by = at + self.cfg.race_check_retire_window;
            stall = stall.max(done.saturating_sub(retire_by));
        }
        for _ in 0..out.posted_transactions {
            self.memsys.buses.ts.acquire(at, slot);
        }
        self.stats.observer_addr_transactions += u64::from(out.total());
        self.stats.retirement_stall_cycles += stall;
        stall
    }

    /// Rotates scheduled threads to the next core (barrier-release
    /// migration, §2.7.4).
    fn rotate_threads(&mut self) {
        let scheduled: Vec<usize> = (0..self.ctxs.len())
            .filter(|&t| self.core_of[t].is_some())
            .collect();
        if scheduled.len() < 2 {
            return;
        }
        let cores: Vec<usize> = scheduled
            .iter()
            .map(|&t| self.core_of[t].unwrap())
            .collect();
        for (k, &t) in scheduled.iter().enumerate() {
            let from = cores[k];
            let to = cores[(k + 1) % cores.len()];
            self.core_of[t] = Some(to);
            self.last_core[t] = Some(to);
            self.core_last_thread[to] = Some(t);
            if from != to {
                self.observer.on_thread_migrated(
                    ThreadId(t as u16),
                    CoreId(from as u8),
                    CoreId(to as u8),
                );
                self.stats.migrations += 1;
                let when = self.ctxs[t].ready_at;
                self.trace.emit(|| TraceEvent {
                    cycle: when,
                    thread: t as u16,
                    kind: EventKind::Migration {
                        from: from as u8,
                        to: to as u8,
                    },
                });
            }
        }
    }
}

// Compile-time Send audit (static_assertions style): the parallel
// injection-sweep executor constructs a `Machine` inside a pool job and
// runs it on a worker thread, and the job's closure borrows the shared
// `Workload`. If any machine internal (RNG, memory system, sync
// manager) or output type ever stops being `Send` — or `Workload`
// stops being `Sync` — sweeps would stop compiling here instead of
// breaking at the first `--jobs N` run.
#[allow(dead_code)]
fn _thread_safety_audit() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    fn machine_is_send<O: MemoryObserver + Send>() {
        send::<Machine<'static, O>>();
    }
    let _ = machine_is_send::<crate::observer::NullObserver>;
    send::<RunOutput>();
    send::<SimStats>();
    send::<SimError>();
    send::<InjectionPlan>();
    sync::<Workload>();
    sync::<MachineConfig>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use cord_trace::builder::WorkloadBuilder;

    fn run_workload(w: &Workload, seed: u64) -> RunOutput {
        let m = Machine::new(
            MachineConfig::paper_4core(),
            w,
            NullObserver,
            seed,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        out
    }

    #[test]
    fn single_thread_sequential_run() {
        let mut b = WorkloadBuilder::new("seq", 1);
        let d = b.alloc_words(4);
        b.thread_mut(0)
            .write(d.word(0))
            .read(d.word(0))
            .compute(100)
            .write(d.word(1));
        let w = b.build();
        let out = run_workload(&w, 1);
        assert_eq!(out.stats.data_reads, 1);
        assert_eq!(out.stats.data_writes, 2);
        assert_eq!(out.stats.instr_counts[0], 103);
        assert!(out.stats.cycles > 600); // at least one memory fetch
        assert_eq!(out.stats.memory_fills, 1);
        assert!(out.stats.l1_hits >= 2);
    }

    #[test]
    fn lock_provides_mutual_exclusion_ordering() {
        let mut b = WorkloadBuilder::new("lock", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let out = run_workload(&w, 7);
        // 2 acquires (read+write) + 2 releases (write) minimum; the
        // blocked acquirer re-reads, adding one more sync read.
        assert!(out.stats.sync_writes >= 4);
        assert!(out.stats.sync_reads >= 2);
        assert_eq!(out.stats.data_reads, 2);
        assert_eq!(out.stats.data_writes, 2);
    }

    #[test]
    fn flag_orders_producer_consumer() {
        let mut b = WorkloadBuilder::new("flag", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(5000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        let w = b.build();
        let out = run_workload(&w, 3);
        // The consumer blocked (its first flag read saw unset) and was
        // woken, so it read the flag at least twice.
        assert!(out.stats.sync_reads >= 2);
        assert_eq!(out.stats.sync_writes, 1);
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        let mut b = WorkloadBuilder::new("barrier", 4);
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(16);
        for t in 0..4 {
            b.thread_mut(t)
                .compute((t as u32 + 1) * 1000)
                .write(d.word(t as u64))
                .barrier(bar)
                .read(d.word(((t + 1) % 4) as u64));
        }
        let w = b.build();
        let out = run_workload(&w, 11);
        // Each thread: 1 write + 1 read data, plus 2 counter accesses.
        assert_eq!(out.stats.data_writes, 4 + 4 + 1); // +1 counter reset
        assert_eq!(out.stats.data_reads, 4 + 4);
        // 4 removable instances for the internal lock + 3 for waits.
        assert_eq!(out.stats.removable_sync_instances, 7);
        assert!(!out.stats.injection_applied);
    }

    #[test]
    fn barrier_repeats_across_episodes() {
        let mut b = WorkloadBuilder::new("barrier2", 3);
        let bar = b.alloc_barrier();
        let d = b.alloc_words(3);
        for t in 0..3 {
            let tb = &mut b.thread_mut(t);
            for _ in 0..4 {
                tb.write(d.word(t as u64)).barrier(bar);
            }
        }
        let w = b.build();
        let out = run_workload(&w, 5);
        assert_eq!(out.stats.data_writes, 3 * 4 + 3 * 4 + 4); // data + counter inc per arrival + resets
    }

    #[test]
    fn injection_removes_lock_and_its_unlock() {
        let mut b = WorkloadBuilder::new("inj", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let baseline = run_workload(&w, 9);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            9,
            InjectionPlan::remove_nth(0),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert!(out.stats.injection_applied);
        // The removed acquire+release eliminates sync accesses.
        assert!(out.stats.sync_writes < baseline.stats.sync_writes);
        assert_eq!(out.stats.removable_sync_instances, 2);
    }

    #[test]
    fn injection_removes_flag_wait() {
        let mut b = WorkloadBuilder::new("injf", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(10_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            13,
            InjectionPlan::remove_nth(0),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert!(out.stats.injection_applied);
        // The reader no longer waits: it finishes long before the writer.
        assert!(out.stats.per_core_cycles[1] < out.stats.per_core_cycles[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = WorkloadBuilder::new("det", 4);
        let l = b.alloc_lock();
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(64);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            for i in 0..16 {
                tb.lock(l)
                    .update(d.word((t as u64 * 16 + i) % 64))
                    .unlock(l)
                    .compute(50);
            }
            tb.barrier(bar);
        }
        let w = b.build();
        let a = run_workload(&w, 42);
        let b2 = run_workload(&w, 42);
        assert_eq!(a.stats, b2.stats);
        assert_eq!(a.truth.thread_hashes, b2.truth.thread_hashes);
        // A different seed gives a different schedule (almost surely).
        // The total cycle count can tie — the lock convoy absorbs
        // jitter — so compare the full stats (bus waits, per-core
        // retire times), which are schedule-sensitive.
        let c = run_workload(&w, 43);
        assert_ne!(a.stats, c.stats);
    }

    #[test]
    fn migration_rotates_threads_at_barriers() {
        let mut b = WorkloadBuilder::new("mig", 4);
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(4);
        for t in 0..4 {
            b.thread_mut(t)
                .write(d.word(t as u64))
                .barrier(bar)
                .read(d.word(t as u64))
                .barrier(bar)
                .read(d.word(t as u64));
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core().with_barrier_migration(),
            &w,
            NullObserver,
            17,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert_eq!(out.stats.migrations, 8); // 4 threads x 2 barriers
                                             // After migrating away, the second read misses (data is in the
                                             // old core's cache).
        assert!(out.stats.sibling_fills > 0);
    }

    #[test]
    fn truth_reflects_lock_serialization() {
        // With a lock, the two updates serialize; the final version
        // count is exactly 2 writes regardless of schedule.
        let mut b = WorkloadBuilder::new("truth", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let out = run_workload(&w, 21);
        // Truth counts every committed access, sync included.
        assert_eq!(
            out.truth.total_writes,
            out.stats.data_writes + out.stats.sync_writes
        );
        assert_eq!(
            out.truth.total_reads,
            out.stats.data_reads + out.stats.sync_reads
        );
        assert_eq!(out.stats.data_writes, 2);
        assert_eq!(out.stats.data_reads, 2);
    }

    #[test]
    fn resolved_capture_produces_streams() {
        let mut b = WorkloadBuilder::new("cap", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core().with_resolved_capture(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        let streams = out.truth.resolved.expect("captured");
        assert_eq!(streams.len(), 2);
        assert!(streams[0].iter().any(|r| r.kind == AccessKind::SyncWrite));
        assert!(streams[1].iter().any(|r| r.kind == AccessKind::DataRead));
    }
}

#[cfg(test)]
mod engine_edge_tests {
    use super::*;
    use crate::observer::NullObserver;
    use cord_trace::builder::WorkloadBuilder;

    /// Fewer threads than cores: the spare cores stay idle and the run
    /// completes normally.
    #[test]
    fn fewer_threads_than_cores() {
        let mut b = WorkloadBuilder::new("two-of-four", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert_eq!(out.stats.instr_counts.len(), 2);
        assert!(out.stats.cycles > 0);
    }

    /// Flag reset makes a flag reusable: a second wait after a reset
    /// blocks until the second set.
    #[test]
    fn flag_reset_enables_reuse() {
        let mut b = WorkloadBuilder::new("flag-reuse", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(2);
        b.thread_mut(0)
            .compute(5_000)
            .write(d.word(0))
            .flag_set(g)
            .compute(50_000)
            .write(d.word(1))
            .flag_set(g);
        b.thread_mut(1)
            .flag_wait(g)
            .read(d.word(0))
            .flag_reset(g)
            .flag_wait(g)
            .read(d.word(1));
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        // The consumer's second read happens after the producer's second
        // write: its core finishes after the 50k-cycle gap.
        assert!(out.stats.per_core_cycles[1] > 50_000);
    }

    /// With jitter disabled the machine is fully deterministic across
    /// any two seeds.
    #[test]
    fn zero_jitter_removes_seed_sensitivity() {
        let mut b = WorkloadBuilder::new("nojit", 2);
        let d = b.alloc_line_aligned(8);
        for t in 0..2 {
            for i in 0..4 {
                b.thread_mut(t)
                    .update(d.word((t as u64 * 4 + i) % 8))
                    .compute(10);
            }
        }
        let w = b.build();
        let run = |seed| {
            let mut cfg = MachineConfig::paper_4core();
            cfg.jitter_cycles = 0;
            let m = Machine::new(cfg, &w, NullObserver, seed, InjectionPlan::none());
            m.run().expect("ok").0.stats
        };
        assert_eq!(run(1), run(999));
    }

    /// A lock under heavy contention hands off FIFO: every thread gets
    /// its critical section (run terminates) and sync writes match
    /// 2 per acquire-release pair.
    #[test]
    fn contended_lock_serves_all_threads() {
        let mut b = WorkloadBuilder::new("contend", 4);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..4 {
            for _ in 0..5 {
                b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
            }
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            3,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        // 20 acquires (take write) + 20 releases.
        assert_eq!(out.stats.sync_writes, 40);
        assert_eq!(out.stats.data_reads, 20);
        assert_eq!(out.stats.data_writes, 20);
    }
}

#[cfg(test)]
mod watchdog_tests {
    use super::*;
    use crate::config::Watchdog;
    use crate::observer::NullObserver;
    use cord_trace::builder::WorkloadBuilder;

    /// Producer sets a flag the consumer waits on.
    fn flag_pair() -> Workload {
        let mut b = WorkloadBuilder::new("wd-flag", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(2_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        b.build()
    }

    #[test]
    fn release_instances_are_counted() {
        let w = flag_pair();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("clean run");
        assert_eq!(out.stats.release_sync_instances, 1);
        assert!(!out.stats.injection_applied);
    }

    #[test]
    fn barrier_release_counts_as_release_instance() {
        let mut b = WorkloadBuilder::new("wd-bar", 4);
        let bar = b.alloc_barrier();
        for t in 0..4 {
            b.thread_mut(t).compute(100).barrier(bar);
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("clean run");
        // One episode: the last arrival's internal flag set.
        assert_eq!(out.stats.release_sync_instances, 1);
    }

    #[test]
    fn removed_release_deadlocks_blocking_waiter() {
        let w = flag_pair();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::remove_release_nth(0),
        );
        let err = m.run().expect_err("waiter must hang");
        match &err {
            SimError::Deadlock {
                cycle,
                stuck_threads,
            } => {
                assert!(*cycle > 0);
                assert_eq!(stuck_threads.len(), 1);
                let diag = &stuck_threads[0];
                assert_eq!(diag.thread.index(), 1);
                assert!(
                    matches!(diag.state, StuckState::BlockedOnFlag(_)),
                    "unexpected stuck state: {}",
                    diag.state
                );
                assert!(diag.op_idx < diag.ops_total);
            }
            other => panic!("expected deadlock, got {other}"),
        }
        assert_eq!(err.kind(), "deadlock");
    }

    #[test]
    fn removed_release_livelocks_spinning_waiter() {
        let w = flag_pair();
        let cfg = MachineConfig::paper_4core()
            .with_spin_waits(50)
            .with_watchdog(Watchdog::progress_window(200_000));
        let m = Machine::new(
            cfg,
            &w,
            NullObserver,
            1,
            InjectionPlan::remove_release_nth(0),
        );
        let err = m.run().expect_err("spinner must livelock");
        match &err {
            SimError::Livelock {
                cycle,
                last_progress_cycle,
                stuck_threads,
            } => {
                assert!(cycle > last_progress_cycle);
                assert!(cycle - last_progress_cycle > 200_000);
                let spinner = stuck_threads
                    .iter()
                    .find(|d| d.thread.index() == 1)
                    .expect("thread 1 diagnosed");
                assert!(
                    matches!(spinner.state, StuckState::SpinningOnFlag(_)),
                    "unexpected stuck state: {}",
                    spinner.state
                );
            }
            other => panic!("expected livelock, got {other}"),
        }
        assert_eq!(err.kind(), "livelock");
    }

    #[test]
    fn cycle_budget_trips_on_long_run() {
        let mut b = WorkloadBuilder::new("wd-budget", 2);
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).compute(50_000).write(d.word(0));
        }
        let w = b.build();
        let cfg = MachineConfig::paper_4core().with_watchdog(Watchdog::cycle_budget(10_000));
        let m = Machine::new(cfg, &w, NullObserver, 1, InjectionPlan::none());
        let err = m.run().expect_err("budget must trip");
        match &err {
            SimError::CycleBudgetExceeded {
                cycle,
                budget,
                stuck_threads,
            } => {
                assert_eq!(*budget, 10_000);
                assert!(*cycle > 10_000);
                assert!(!stuck_threads.is_empty());
            }
            other => panic!("expected budget exceeded, got {other}"),
        }
        assert_eq!(err.kind(), "cycle-budget-exceeded");
    }

    #[test]
    fn watchdog_does_not_fire_on_healthy_runs() {
        let w = flag_pair();
        let cfg = MachineConfig::paper_4core().with_watchdog(Watchdog::new(50_000_000, 10_000_000));
        let m = Machine::new(cfg, &w, NullObserver, 1, InjectionPlan::none());
        assert!(m.run().is_ok());
    }

    #[test]
    fn spin_waits_complete_clean_runs() {
        let w = flag_pair();
        let blocking = {
            let m = Machine::new(
                MachineConfig::paper_4core(),
                &w,
                NullObserver,
                1,
                InjectionPlan::none(),
            );
            m.run().expect("blocking run").0
        };
        let spinning = {
            let cfg = MachineConfig::paper_4core().with_spin_waits(50);
            let m = Machine::new(cfg, &w, NullObserver, 1, InjectionPlan::none());
            m.run().expect("spin run").0
        };
        // Same data accesses either way; spinning only adds sync reads.
        assert_eq!(blocking.stats.data_reads, spinning.stats.data_reads);
        assert_eq!(blocking.stats.data_writes, spinning.stats.data_writes);
        assert!(spinning.stats.sync_reads >= blocking.stats.sync_reads);
    }

    #[test]
    fn failure_is_deterministic_for_a_seed() {
        let w = flag_pair();
        let run = || {
            let cfg = MachineConfig::paper_4core()
                .with_spin_waits(50)
                .with_watchdog(Watchdog::progress_window(100_000));
            Machine::new(
                cfg,
                &w,
                NullObserver,
                9,
                InjectionPlan::remove_release_nth(0),
            )
            .run()
            .expect_err("livelock")
        };
        assert_eq!(run(), run());
    }
}
