//! Simulation failure types: per-thread stuck-state diagnostics and the
//! [`SimError`] variants runs abort with.
//!
//! Every error carries a [`ThreadDiag`] per unfinished thread so sweep
//! failure records can say *which* threads were wedged and where — the
//! difference between "this injection deadlocked" and a reproducible
//! bug report.

use cord_trace::types::{FlagId, LockId, ThreadId};
use std::fmt;

/// Why a thread had not finished when a run aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckState {
    /// Ready to run (it had work left but the run was cut short).
    Runnable,
    /// Parked waiting for a lock release.
    BlockedOnLock(LockId),
    /// Parked waiting for a flag set.
    BlockedOnFlag(FlagId),
    /// Busily re-polling an unset flag (spin-wait mode).
    SpinningOnFlag(FlagId),
}

impl fmt::Display for StuckState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckState::Runnable => write!(f, "runnable"),
            StuckState::BlockedOnLock(l) => write!(f, "blocked on lock {}", l.0),
            StuckState::BlockedOnFlag(g) => write!(f, "blocked on flag {}", g.0),
            StuckState::SpinningOnFlag(g) => write!(f, "spinning on flag {}", g.0),
        }
    }
}

/// Per-thread diagnostic snapshot attached to every [`SimError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadDiag {
    /// The unfinished thread.
    pub thread: ThreadId,
    /// What it was doing when the run aborted.
    pub state: StuckState,
    /// Workload ops it had fetched.
    pub op_idx: usize,
    /// Workload ops in its program.
    pub ops_total: usize,
    /// Instructions it had retired.
    pub instr: u64,
    /// Its local clock at abort time.
    pub ready_at: u64,
}

impl fmt::Display for ThreadDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread {} {} at op {}/{} (instr {}, cycle {})",
            self.thread.index(),
            self.state,
            self.op_idx,
            self.ops_total,
            self.instr,
            self.ready_at
        )
    }
}

/// Simulation failure.
///
/// Every variant carries per-thread stuck-state diagnostics so sweep
/// failure records can say *which* threads were wedged and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No core can make progress but not all threads finished.
    Deadlock {
        /// Cycle of the stall.
        cycle: u64,
        /// Unfinished threads and what they were stuck on.
        stuck_threads: Vec<ThreadDiag>,
    },
    /// Threads kept executing (e.g. spin polls) but none fetched a new
    /// workload op within the watchdog's progress window.
    Livelock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Cycle of the last genuine progress (a workload-op fetch).
        last_progress_cycle: u64,
        /// Unfinished threads and what they were stuck on.
        stuck_threads: Vec<ThreadDiag>,
    },
    /// Simulated time exceeded the watchdog's total cycle budget.
    CycleBudgetExceeded {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The configured budget.
        budget: u64,
        /// Unfinished threads and what they were stuck on.
        stuck_threads: Vec<ThreadDiag>,
    },
}

impl SimError {
    /// Cycle at which the run aborted.
    pub fn cycle(&self) -> u64 {
        match self {
            SimError::Deadlock { cycle, .. }
            | SimError::Livelock { cycle, .. }
            | SimError::CycleBudgetExceeded { cycle, .. } => *cycle,
        }
    }

    /// The per-thread diagnostics, regardless of variant.
    pub fn stuck_threads(&self) -> &[ThreadDiag] {
        match self {
            SimError::Deadlock { stuck_threads, .. }
            | SimError::Livelock { stuck_threads, .. }
            | SimError::CycleBudgetExceeded { stuck_threads, .. } => stuck_threads,
        }
    }

    /// Short machine-readable kind name ("deadlock" / "livelock" /
    /// "cycle-budget-exceeded"), used in sweep failure records.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::Livelock { .. } => "livelock",
            SimError::CycleBudgetExceeded { .. } => "cycle-budget-exceeded",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                stuck_threads,
            } => write!(
                f,
                "deadlock at cycle {cycle}: {} thread(s) stuck",
                stuck_threads.len()
            ),
            SimError::Livelock {
                cycle,
                last_progress_cycle,
                stuck_threads,
            } => write!(
                f,
                "livelock at cycle {cycle}: no progress since cycle \
                 {last_progress_cycle}, {} thread(s) stuck",
                stuck_threads.len()
            ),
            SimError::CycleBudgetExceeded {
                cycle,
                budget,
                stuck_threads,
            } => write!(
                f,
                "cycle budget {budget} exceeded at cycle {cycle}: \
                 {} thread(s) unfinished",
                stuck_threads.len()
            ),
        }
    }
}

impl std::error::Error for SimError {}
