//! Fault injection (§3.4): the two dynamic sync-instance numbering
//! streams and the removal decision.
//!
//! Two independent streams exist:
//!
//! * *removable* (wait-side) instances — lock calls (with their
//!   matching unlock), flag waits, and barrier-internal instances;
//! * *release* instances — flag sets, including the barrier release's
//!   internal flag set.
//!
//! Removing a wait leaves the releaser unaffected (a race appears);
//! removing a release can leave the waiter stuck — a deadlock under
//! blocking waits, a livelock under spin waits
//! ([`MachineConfig::flag_spin_cycles`](crate::config::MachineConfig)).

use crate::engine::Machine;
use crate::observer::MemoryObserver;
use cord_obs::{EventKind, TraceEvent};

/// Which dynamic synchronization instance (if any) to remove (§3.4).
///
/// See the [module docs](self) for the two numbering streams and their
/// failure modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Zero-based index (in dynamic dispatch order) of the removable
    /// wait-side sync instance to remove; `None` removes no wait.
    pub remove_instance: Option<u64>,
    /// Zero-based index (in dynamic execution order) of the release
    /// (flag-set) instance to remove; `None` removes no release.
    pub remove_release: Option<u64>,
}

impl InjectionPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Remove the `n`-th dynamic removable (wait-side) sync instance.
    pub fn remove_nth(n: u64) -> Self {
        InjectionPlan {
            remove_instance: Some(n),
            remove_release: None,
        }
    }

    /// Remove the `n`-th dynamic release (flag-set) instance.
    pub fn remove_release_nth(n: u64) -> Self {
        InjectionPlan {
            remove_instance: None,
            remove_release: Some(n),
        }
    }

    /// Whether this plan removes anything at all.
    pub fn is_injecting(&self) -> bool {
        self.remove_instance.is_some() || self.remove_release.is_some()
    }
}

impl<O: MemoryObserver> Machine<'_, O> {
    /// Consumes one removable-sync-instance index for thread `c`;
    /// `true` if this instance is the injection target.
    pub(crate) fn take_instance(&mut self, c: usize) -> bool {
        let idx = self.next_instance;
        self.next_instance += 1;
        self.stats.removable_sync_instances += 1;
        if self.plan.remove_instance == Some(idx) {
            self.stats.injection_applied = true;
            self.trace.emit(|| TraceEvent {
                cycle: self.ctxs[c].ready_at,
                thread: self.ctxs[c].thread.0,
                kind: EventKind::Injection {
                    instance: idx,
                    release: false,
                },
            });
            true
        } else {
            false
        }
    }

    /// Consumes one release-instance index (a flag set, including the
    /// barrier release's internal one) for thread `c`; `true` if it is
    /// the injection target.
    pub(crate) fn take_release_instance(&mut self, c: usize) -> bool {
        let idx = self.next_release_instance;
        self.next_release_instance += 1;
        self.stats.release_sync_instances += 1;
        if self.plan.remove_release == Some(idx) {
            self.stats.injection_applied = true;
            self.trace.emit(|| TraceEvent {
                cycle: self.ctxs[c].ready_at,
                thread: self.ctxs[c].thread.0,
                kind: EventKind::Injection {
                    instance: idx,
                    release: true,
                },
            });
            true
        } else {
            false
        }
    }
}
