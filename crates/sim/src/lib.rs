//! Discrete-event CMP simulator substrate for the CORD reproduction.
//!
//! The paper (§3.1) evaluates CORD on a cycle-accurate, execution-driven
//! simulator of a 4-processor CMP with private L1/L2 caches, snooping
//! coherence, an on-chip 128-bit data bus, a half-frequency
//! address/timestamp bus, and a 200 MHz memory bus. This crate provides
//! that substrate:
//!
//! * [`config`] — machine parameters with the paper's defaults.
//! * [`cache`] / [`memsys`] — set-associative L1/L2 caches with MESI
//!   coherence, inclusion, and per-access timing.
//! * [`coherence`] — pluggable transaction-timing backends: the
//!   paper's snooping bus and a directory-based MESI organization with
//!   per-home occupancy and forwarding latency.
//! * [`bus`] — the three shared buses with FIFO arbitration and
//!   contention accounting (where CORD's overhead comes from).
//! * [`sync`] — functional lock/flag/barrier semantics.
//! * [`engine`] — the execution engine's step loop, composing the
//!   focused kernel layers: [`syncexp`] (sync-op → labeled-access
//!   expansion), [`sched`] (ready-core selection), [`inject`] (fault
//!   injection, §3.4), [`migrate`] (barrier migration + §2.7.4
//!   resync), and [`errors`] (abort diagnostics).
//! * [`observer`] — the [`MemoryObserver`](observer::MemoryObserver)
//!   hook trait detectors implement.
//! * [`truth`] — ground-truth functional outcomes for replay
//!   verification.
//! * [`stats`] — run statistics.
//!
//! # Example
//!
//! ```
//! use cord_sim::config::MachineConfig;
//! use cord_sim::engine::{InjectionPlan, Machine};
//! use cord_sim::observer::NullObserver;
//! use cord_trace::builder::WorkloadBuilder;
//!
//! let mut b = WorkloadBuilder::new("hello", 2);
//! let lock = b.alloc_lock();
//! let data = b.alloc_words(1);
//! for t in 0..2 {
//!     b.thread_mut(t).lock(lock).update(data.word(0)).unlock(lock);
//! }
//! let workload = b.build();
//! let machine = Machine::new(
//!     MachineConfig::paper_4core(),
//!     &workload,
//!     NullObserver,
//!     42,
//!     InjectionPlan::none(),
//! );
//! let (out, _observer) = machine.run()?;
//! assert_eq!(out.stats.data_writes, 2);
//! # Ok::<(), cord_sim::engine::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod engine;
pub mod errors;
pub mod inject;
pub mod memsys;
pub mod migrate;
pub mod observer;
pub mod sched;
pub mod stats;
pub mod sync;
pub mod syncexp;
pub mod truth;

pub use config::{MachineConfig, Watchdog};
pub use engine::{InjectionPlan, Machine, RunOutput, SimError, StuckState, ThreadDiag};
pub use observer::{
    AccessEvent, AccessKind, AccessPath, CoreId, Level, LineRemoval, MemoryObserver, NullObserver,
    ObserverOutcome, RemovalCause,
};
pub use stats::SimStats;
pub use truth::{ResolvedAccess, TruthSummary};
