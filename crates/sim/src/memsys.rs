//! The coherent memory hierarchy: private L1/L2 per core, MESI over a
//! pluggable [`CoherenceBackend`], and main memory.
//!
//! Invariants maintained:
//!
//! * **Inclusion**: every L1-resident line is L2-resident on the same
//!   core; evicting an L2 line removes the L1 copy.
//! * **State mirroring**: when a line is in both levels its MESI state is
//!   the same in both, so only L2 states matter for coherence decisions.
//! * **MESI**: at most one core holds a line Modified/Exclusive; Shared
//!   copies coexist.
//!
//! Every access returns its completion time, its [`AccessPath`] (which
//! tells CORD whether a bus transaction already broadcast the access and
//! whether the response carries cache or memory timestamps), and the
//! ordered list of fill/removal events detectors use to mirror cache
//! residency.

use crate::bus::Buses;
use crate::cache::{Cache, Mesi};
use crate::coherence::{BackendEnum, CoherenceBackend, CoherenceStats};
use crate::config::MachineConfig;
use crate::observer::{AccessPath, CoreId, Level, LineRemoval, RemovalCause};
use cord_trace::types::{Addr, LineAddr};

/// A cache-residency change, delivered to observers in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A line left a cache level.
    Removed(LineRemoval),
    /// A line was installed into a cache level.
    Filled {
        /// Whose cache.
        core: CoreId,
        /// Which level.
        level: Level,
        /// Which line.
        line: LineAddr,
    },
}

/// Result of one memory access.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// Cycle at which the access completes.
    pub done: u64,
    /// How the access was satisfied.
    pub path: AccessPath,
    /// Residency changes, in the order they must be observed (victims
    /// before fills).
    pub events: Vec<MemEvent>,
}

/// The memory hierarchy of the whole machine.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MachineConfig,
    /// Shared buses (public so the engine can charge observer-issued
    /// address-bus transactions and read statistics).
    pub buses: Buses,
    backend: BackendEnum,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
}

impl MemorySystem {
    /// An empty hierarchy for `cfg.cores` cores.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let backend = BackendEnum::for_config(&cfg);
        let l1 = (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect();
        let l2 = (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect();
        MemorySystem {
            cfg,
            buses: Buses::new(),
            backend,
            l1,
            l2,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Counters the coherence backend accumulated (all-zero when
    /// snooping).
    pub fn coherence_stats(&self) -> CoherenceStats {
        self.backend.stats()
    }

    /// Read-only view of a core's L2 (used by tests and debugging).
    pub fn l2_of(&self, core: CoreId) -> &Cache {
        &self.l2[core.index()]
    }

    /// Read-only view of a core's L1.
    pub fn l1_of(&self, core: CoreId) -> &Cache {
        &self.l1[core.index()]
    }

    /// Performs one word access by `core` starting at cycle `now`.
    pub fn access(&mut self, core: CoreId, addr: Addr, write: bool, now: u64) -> AccessResult {
        let line = addr.line();
        let c = core.index();
        let mut events = Vec::new();

        // ---- L1 probe ----
        // `touch_probe` fuses the hit test with the LRU touch into one
        // set scan; the tick sequence is identical to the previous
        // probe-then-touch pair (self-core ticks only ever advance on
        // self-core touches, so bumping before `invalidate_others` —
        // which touches *other* cores' caches — changes nothing).
        if let Some(state) = self.l1[c].touch_probe(line) {
            if !write || state.writable() {
                if write && state == Mesi::Exclusive {
                    self.l1[c].set_state(line, Mesi::Modified);
                    self.l2[c].set_state_touch(line, Mesi::Modified);
                } else {
                    self.l2[c].touch(line);
                }
                return AccessResult {
                    done: now + self.cfg.l1_hit_cycles,
                    path: AccessPath::L1Hit,
                    events,
                };
            }
            // Write to a Shared line: permission upgrade.
            let granted = self.backend.request(&mut self.buses, now, line);
            self.invalidate_others(core, line, &mut events);
            self.l1[c].set_state(line, Mesi::Modified);
            self.l2[c].set_state_touch(line, Mesi::Modified);
            return AccessResult {
                done: self.backend.upgrade_done(
                    &mut self.buses,
                    granted,
                    line,
                    self.cfg.l1_hit_cycles,
                ),
                path: AccessPath::UpgradeHit,
                events,
            };
        }

        // ---- L2 probe ----
        if let Some(state) = self.l2[c].touch_probe(line) {
            if !write || state.writable() {
                let l1_state = if write {
                    self.l2[c].set_state(line, Mesi::Modified);
                    Mesi::Modified
                } else {
                    state
                };
                self.fill_l1(core, line, l1_state, &mut events);
                return AccessResult {
                    done: now + self.cfg.l2_hit_cycles,
                    path: AccessPath::L2Hit,
                    events,
                };
            }
            // Write to Shared in L2: upgrade.
            let granted = self.backend.request(&mut self.buses, now, line);
            self.invalidate_others(core, line, &mut events);
            self.l2[c].set_state(line, Mesi::Modified);
            self.fill_l1(core, line, Mesi::Modified, &mut events);
            return AccessResult {
                done: self.backend.upgrade_done(
                    &mut self.buses,
                    granted,
                    line,
                    self.cfg.l2_hit_cycles,
                ),
                path: AccessPath::UpgradeHit,
                events,
            };
        }

        // ---- Full miss: coherence transaction ----
        let granted = self.backend.request(&mut self.buses, now, line);

        let holders: Vec<usize> = (0..self.cfg.cores)
            .filter(|&h| h != c && self.l2[h].contains(line))
            .collect();

        let (path, done, fill_state) = if holders.is_empty() {
            // Memory supplies.
            let state = if write {
                Mesi::Modified
            } else {
                Mesi::Exclusive
            };
            (
                AccessPath::FillFromMemory,
                self.backend
                    .memory_fill_done(&mut self.buses, granted, line),
                state,
            )
        } else {
            // A sibling cache supplies; prefer an owner (M/E).
            let supplier = holders
                .iter()
                .copied()
                .find(|&h| self.l2[h].probe(line).is_some_and(Mesi::writable))
                .unwrap_or(holders[0]);
            let mut dirty_writebacks = 0;
            if write {
                // Read-for-ownership: all holders invalidate.
                self.invalidate_others(core, line, &mut events);
            } else {
                // Downgrade holders to Shared; a Modified holder's data
                // also updates memory (posted write-back, charged by
                // the backend).
                for &h in &holders {
                    let st = self.l2[h].probe(line).expect("holder has line");
                    if st.dirty() {
                        dirty_writebacks += 1;
                    }
                    if st != Mesi::Shared {
                        self.l2[h].set_state(line, Mesi::Shared);
                        if self.l1[h].contains(line) {
                            self.l1[h].set_state(line, Mesi::Shared);
                        }
                    }
                }
            }
            let done =
                self.backend
                    .sibling_fill_done(&mut self.buses, granted, line, dirty_writebacks);
            let state = if write { Mesi::Modified } else { Mesi::Shared };
            (
                AccessPath::FillFromSibling(CoreId(supplier as u8)),
                done,
                state,
            )
        };

        self.fill_l2(core, line, fill_state, &mut events);
        self.fill_l1(core, line, fill_state, &mut events);

        AccessResult { done, path, events }
    }

    /// Invalidates every other core's copy of `line`, recording removal
    /// events (L1 before L2 per core).
    fn invalidate_others(&mut self, requester: CoreId, line: LineAddr, events: &mut Vec<MemEvent>) {
        for h in 0..self.cfg.cores {
            if h == requester.index() {
                continue;
            }
            if let Some(st) = self.l1[h].remove(line) {
                events.push(MemEvent::Removed(LineRemoval {
                    core: CoreId(h as u8),
                    level: Level::L1,
                    line,
                    cause: RemovalCause::Invalidation,
                    dirty: st.dirty(),
                }));
            }
            if let Some(st) = self.l2[h].remove(line) {
                events.push(MemEvent::Removed(LineRemoval {
                    core: CoreId(h as u8),
                    level: Level::L2,
                    line,
                    cause: RemovalCause::Invalidation,
                    dirty: st.dirty(),
                }));
            }
        }
    }

    /// Installs `line` into `core`'s L1, evicting as needed. The evicted
    /// line needs no write-back: state mirroring means the L2 copy is
    /// already Modified whenever the L1 copy is.
    fn fill_l1(&mut self, core: CoreId, line: LineAddr, state: Mesi, events: &mut Vec<MemEvent>) {
        let c = core.index();
        if self.l1[c].contains(line) {
            self.l1[c].set_state(line, state);
            self.l1[c].touch(line);
            return;
        }
        if let Some(victim) = self.l1[c].insert(line, state) {
            events.push(MemEvent::Removed(LineRemoval {
                core,
                level: Level::L1,
                line: victim.line,
                cause: RemovalCause::Capacity,
                dirty: victim.state.dirty(),
            }));
        }
        events.push(MemEvent::Filled {
            core,
            level: Level::L1,
            line,
        });
    }

    /// Installs `line` into `core`'s L2, evicting as needed; a dirty
    /// victim posts a write-back on the memory bus, and inclusion removes
    /// the victim's L1 copy.
    fn fill_l2(&mut self, core: CoreId, line: LineAddr, state: Mesi, events: &mut Vec<MemEvent>) {
        let c = core.index();
        if let Some(victim) = self.l2[c].insert(line, state) {
            if self.l1[c].remove(victim.line).is_some() {
                events.push(MemEvent::Removed(LineRemoval {
                    core,
                    level: Level::L1,
                    line: victim.line,
                    cause: RemovalCause::Capacity,
                    dirty: victim.state.dirty(),
                }));
            }
            if victim.state.dirty() {
                // Posted write-back; does not delay the access.
                let at = self.buses.mem.free_at();
                self.buses.mem.acquire(at, self.cfg.mem_bus_line_occupancy);
            }
            events.push(MemEvent::Removed(LineRemoval {
                core,
                level: Level::L2,
                line: victim.line,
                cause: RemovalCause::Capacity,
                dirty: victim.state.dirty(),
            }));
        }
        events.push(MemEvent::Filled {
            core,
            level: Level::L2,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MachineConfig::paper_4core())
    }

    fn a(byte: u64) -> Addr {
        Addr::new(byte)
    }

    #[test]
    fn cold_read_fills_from_memory_exclusive() {
        let mut m = sys();
        let r = m.access(CoreId(0), a(0x40), false, 0);
        assert_eq!(r.path, AccessPath::FillFromMemory);
        assert!(r.done >= m.cfg.memory_cycles);
        assert_eq!(
            m.l2_of(CoreId(0)).probe(a(0x40).line()),
            Some(Mesi::Exclusive)
        );
        assert_eq!(
            m.l1_of(CoreId(0)).probe(a(0x40).line()),
            Some(Mesi::Exclusive)
        );
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = sys();
        m.access(CoreId(0), a(0x40), false, 0);
        let r = m.access(CoreId(0), a(0x44), false, 1000);
        assert_eq!(r.path, AccessPath::L1Hit);
        assert_eq!(r.done, 1000 + m.cfg.l1_hit_cycles);
    }

    #[test]
    fn write_after_exclusive_read_is_silent_upgrade() {
        let mut m = sys();
        m.access(CoreId(0), a(0x40), false, 0);
        let r = m.access(CoreId(0), a(0x40), true, 1000);
        assert_eq!(r.path, AccessPath::L1Hit); // E -> M without bus
        assert_eq!(
            m.l2_of(CoreId(0)).probe(a(0x40).line()),
            Some(Mesi::Modified)
        );
    }

    #[test]
    fn cross_core_read_is_cache_to_cache_and_shared() {
        let mut m = sys();
        m.access(CoreId(0), a(0x40), true, 0);
        let r = m.access(CoreId(1), a(0x40), false, 1000);
        assert_eq!(r.path, AccessPath::FillFromSibling(CoreId(0)));
        // Supplier downgraded to Shared (with posted write-back).
        assert_eq!(m.l2_of(CoreId(0)).probe(a(0x40).line()), Some(Mesi::Shared));
        assert_eq!(m.l2_of(CoreId(1)).probe(a(0x40).line()), Some(Mesi::Shared));
        // Much faster than memory.
        assert!(r.done - 1000 < m.cfg.memory_cycles);
    }

    #[test]
    fn write_to_shared_line_upgrades_and_invalidates() {
        let mut m = sys();
        m.access(CoreId(0), a(0x40), false, 0);
        m.access(CoreId(1), a(0x40), false, 1000);
        let r = m.access(CoreId(1), a(0x40), true, 2000);
        assert_eq!(r.path, AccessPath::UpgradeHit);
        assert_eq!(m.l2_of(CoreId(0)).probe(a(0x40).line()), None);
        assert_eq!(
            m.l2_of(CoreId(1)).probe(a(0x40).line()),
            Some(Mesi::Modified)
        );
        // Core 0 saw invalidation removals for L1 and L2.
        let removals: Vec<_> = r
            .events
            .iter()
            .filter_map(|e| match e {
                MemEvent::Removed(rm) => Some(*rm),
                _ => None,
            })
            .collect();
        assert!(removals
            .iter()
            .any(|rm| rm.level == Level::L2 && rm.cause == RemovalCause::Invalidation));
    }

    #[test]
    fn rfo_invalidates_all_holders() {
        let mut m = sys();
        m.access(CoreId(0), a(0x40), false, 0);
        m.access(CoreId(1), a(0x40), false, 1000);
        // Core 2 writes: full miss with two holders.
        let r = m.access(CoreId(2), a(0x40), true, 2000);
        assert!(matches!(r.path, AccessPath::FillFromSibling(_)));
        assert_eq!(m.l2_of(CoreId(0)).probe(a(0x40).line()), None);
        assert_eq!(m.l2_of(CoreId(1)).probe(a(0x40).line()), None);
        assert_eq!(
            m.l2_of(CoreId(2)).probe(a(0x40).line()),
            Some(Mesi::Modified)
        );
    }

    #[test]
    fn capacity_eviction_emits_removal_and_maintains_inclusion() {
        let mut m = sys();
        let sets = m.cfg.l2.num_sets();
        let ways = u64::from(m.cfg.l2.ways);
        // Fill one L2 set past capacity: lines k*sets for k in 0..=ways.
        let mut evicted = None;
        for k in 0..=ways {
            let addr = Addr::new(k * sets * 64);
            let r = m.access(CoreId(0), addr, true, k * 10_000);
            for e in &r.events {
                if let MemEvent::Removed(rm) = e {
                    if rm.level == Level::L2 && rm.cause == RemovalCause::Capacity {
                        evicted = Some(*rm);
                    }
                }
            }
        }
        let rm = evicted.expect("an L2 capacity eviction");
        assert!(rm.dirty, "written lines evict dirty");
        // Inclusion: the evicted line is gone from L1 too.
        assert!(!m.l1_of(CoreId(0)).contains(rm.line));
    }

    #[test]
    fn contention_delays_back_to_back_misses() {
        let mut m = sys();
        // Two cores miss to memory at the same cycle; the second is
        // delayed by bus arbitration.
        let r0 = m.access(CoreId(0), a(0x1000), false, 0);
        let r1 = m.access(CoreId(1), a(0x2000), false, 0);
        assert!(r1.done > r0.done);
        assert!(m.buses.addr.contention_cycles() > 0 || m.buses.mem.contention_cycles() > 0);
    }

    #[test]
    fn state_mirroring_invariant_holds_after_traffic() {
        let mut m = sys();
        let addrs = [0x40u64, 0x80, 0x40, 0x1040, 0x40, 0x2040];
        for (i, &b) in addrs.iter().enumerate() {
            let core = CoreId((i % 4) as u8);
            m.access(core, a(b), i % 2 == 0, (i as u64) * 500);
        }
        for c in 0..4 {
            let core = CoreId(c);
            for (line, l1st) in m.l1_of(core).lines().collect::<Vec<_>>() {
                let l2st = m.l2_of(core).probe(line);
                assert_eq!(l2st, Some(l1st), "L1/L2 state mismatch for {line}");
            }
        }
    }
}

#[cfg(test)]
mod directory_tests {
    use super::*;
    use crate::config::CoherenceKind;

    #[test]
    fn directory_mode_slows_transfers_and_upgrades() {
        let snoop_cfg = MachineConfig::paper_4core();
        let dir_cfg = MachineConfig::paper_4core_directory();
        assert_eq!(dir_cfg.coherence, CoherenceKind::Directory);

        let run = |cfg: MachineConfig| {
            let mut m = MemorySystem::new(cfg);
            m.access(CoreId(0), Addr::new(0x40), true, 0);
            // Cache-to-cache transfer.
            let c2c = m.access(CoreId(1), Addr::new(0x40), false, 10_000);
            // Upgrade from Shared.
            let upg = m.access(CoreId(1), Addr::new(0x40), true, 20_000);
            (c2c.done - 10_000, upg.done - 20_000)
        };
        let (snoop_c2c, snoop_upg) = run(snoop_cfg.clone());
        let (dir_c2c, dir_upg) = run(dir_cfg.clone());
        // Uncontended, the directory's indirection costs exactly one
        // address hop + home lookup + one forwarding hop on both paths.
        let indirection = dir_cfg.addr_bus_slot_cycles
            + dir_cfg.directory_lookup_cycles
            + dir_cfg.directory_forward_cycles;
        assert_eq!(dir_c2c, snoop_c2c + indirection);
        // Snooping upgrades already pay the broadcast slot; the
        // directory replaces that slot's drain with the forward hop.
        assert_eq!(
            dir_upg,
            snoop_upg + dir_cfg.directory_lookup_cycles + dir_cfg.directory_forward_cycles
        );
    }

    #[test]
    fn directory_pays_lookup_before_memory_fills() {
        let run = |cfg: MachineConfig| {
            let mut m = MemorySystem::new(cfg);
            m.access(CoreId(0), Addr::new(0x40), false, 0).done
        };
        let dir_cfg = MachineConfig::paper_4core_directory();
        // The home lookup is on the critical path of a memory fetch
        // (no forward: the directory sits at the memory controller).
        assert_eq!(
            run(dir_cfg.clone()),
            run(MachineConfig::paper_4core())
                + dir_cfg.addr_bus_slot_cycles
                + dir_cfg.directory_lookup_cycles
        );
    }

    #[test]
    fn backend_stats_count_directory_work_only() {
        let mut snoop = MemorySystem::new(MachineConfig::paper_4core());
        let mut dir = MemorySystem::new(MachineConfig::paper_4core_directory());
        for m in [&mut snoop, &mut dir] {
            m.access(CoreId(0), Addr::new(0x40), true, 0);
            m.access(CoreId(1), Addr::new(0x40), false, 10_000);
            m.access(CoreId(1), Addr::new(0x40), true, 20_000);
        }
        assert_eq!(
            snoop.coherence_stats(),
            crate::coherence::CoherenceStats::default()
        );
        let s = dir.coherence_stats();
        assert_eq!(s.directory_lookups, 3);
        assert_eq!(s.directory_forwards, 2); // sibling fill + upgrade
        assert!(s.home_busy_cycles > 0);
    }

    #[test]
    fn coherence_states_identical_across_kinds() {
        // Functional behaviour (who holds what) must not depend on the
        // coherence organization — only timing does.
        let trace = [
            (0u8, 0x40u64, true),
            (1, 0x40, false),
            (2, 0x40, true),
            (1, 0x80, true),
            (0, 0x80, false),
        ];
        let run = |cfg: MachineConfig| {
            let mut m = MemorySystem::new(cfg);
            let mut now = 0;
            for &(c, a, w) in &trace {
                now = m.access(CoreId(c), Addr::new(a), w, now + 100).done;
            }
            (0..4)
                .map(|c| {
                    let mut lines: Vec<_> = m.l2_of(CoreId(c)).lines().collect();
                    lines.sort_by_key(|(l, _)| l.0);
                    lines
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(MachineConfig::paper_4core()),
            run(MachineConfig::paper_4core_directory())
        );
    }
}
