//! Thread migration: barrier-release rotation and the §2.7.4
//! resynchronization bump.
//!
//! A thread rescheduled onto a core whose caches carry another thread's
//! timestamps has never been ordered against them — co-resident
//! conflicts are exempt from race checks, so only the resynchronization
//! bump orders them for replay. That applies both when the thread
//! changed cores and when its old core ran a different thread meanwhile
//! (same-core reschedule after time-sharing).

use crate::engine::Machine;
use crate::observer::{CoreId, MemoryObserver};
use cord_obs::{EventKind, TraceEvent};
use cord_trace::types::ThreadId;

impl<O: MemoryObserver> Machine<'_, O> {
    /// Applies the §2.7.4 resynchronization when thread `t` is
    /// (re)granted `core`: notifies the observer (which bumps the
    /// thread past the destination core's max timestamp) and records
    /// the migration, then marks `t` as the core's current tenant.
    pub(crate) fn resync_on_reschedule(&mut self, t: usize, core: usize) {
        // Resynchronize when the thread changed cores *or* the core ran
        // another thread meanwhile (same-core reschedule after
        // time-sharing): either way its caches hold timestamps the
        // incoming thread has never been ordered against.
        if self.last_core[t] != Some(core) || self.core_last_thread[core] != Some(t) {
            let from = self.last_core[t].unwrap_or(core);
            self.observer.on_thread_migrated(
                ThreadId(t as u16),
                CoreId(from as u8),
                CoreId(core as u8),
            );
            self.stats.migrations += 1;
            let when = self.ctxs[t].ready_at;
            self.trace.emit(|| TraceEvent {
                cycle: when,
                thread: t as u16,
                kind: EventKind::Migration {
                    from: from as u8,
                    to: core as u8,
                },
            });
        }
        self.last_core[t] = Some(core);
        self.core_last_thread[core] = Some(t);
    }

    /// Rotates scheduled threads to the next core (barrier-release
    /// migration, §2.7.4).
    pub(crate) fn rotate_threads(&mut self) {
        let scheduled: Vec<usize> = (0..self.ctxs.len())
            .filter(|&t| self.core_of[t].is_some())
            .collect();
        if scheduled.len() < 2 {
            return;
        }
        let cores: Vec<usize> = scheduled
            .iter()
            .map(|&t| self.core_of[t].unwrap())
            .collect();
        for (k, &t) in scheduled.iter().enumerate() {
            let from = cores[k];
            let to = cores[(k + 1) % cores.len()];
            self.core_of[t] = Some(to);
            self.last_core[t] = Some(to);
            self.core_last_thread[to] = Some(t);
            if from != to {
                self.observer.on_thread_migrated(
                    ThreadId(t as u16),
                    CoreId(from as u8),
                    CoreId(to as u8),
                );
                self.stats.migrations += 1;
                let when = self.ctxs[t].ready_at;
                self.trace.emit(|| TraceEvent {
                    cycle: when,
                    thread: t as u16,
                    kind: EventKind::Migration {
                        from: from as u8,
                        to: to as u8,
                    },
                });
            }
        }
    }
}
