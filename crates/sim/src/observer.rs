//! The hook interface detectors plug into.
//!
//! The vocabulary itself — [`MemoryObserver`], [`AccessEvent`], and the
//! rest — lives in [`cord_obs::events`], because it doubles as the wire
//! vocabulary of streaming detection (`cord_obs::wire` serializes it).
//! This module re-exports everything so `cord_sim::observer::*` paths
//! keep working: the simulator is one *producer* of the event stream,
//! not the owner of its types.

pub use cord_obs::events::{
    AccessEvent, AccessKind, AccessPath, CoreId, Level, LineRemoval, MemoryObserver, NullObserver,
    ObserverOutcome, RemovalCause,
};
