//! Ready-core selection and core assignment.
//!
//! The engine repeatedly steps the runnable scheduled thread with the
//! smallest `(ready_at, thread index)` key. The seed implementation
//! re-scanned every context per step — O(threads) on the hottest loop
//! in the simulator. [`ReadyQueue`] replaces the scan with a lazy
//! binary heap: every transition into the Ready-with-core state pushes
//! an entry, and stale entries (the thread stepped, blocked, finished,
//! or lost its core since the push) are discarded at pop time by
//! revalidating against the live context. The pop order is exactly the
//! scan's min key, so schedules are bit-for-bit unchanged — a
//! `debug_assertions` cross-check against the linear scan enforces
//! this on every step in debug builds.

use crate::engine::{Machine, Status};
use crate::observer::MemoryObserver;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lazy min-heap of `(ready_at, thread index)` scheduling keys.
///
/// Entries are snapshots, not live state: an entry is *valid* iff the
/// thread is still Ready, still holds a core, and its `ready_at` still
/// equals the snapshotted key. Anything else is a leftover from an
/// earlier transition and is dropped on pop.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl ReadyQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records that thread `idx` became runnable-on-a-core at
    /// `ready_at`.
    pub(crate) fn push(&mut self, ready_at: u64, idx: usize) {
        self.heap.push(Reverse((ready_at, idx)));
    }

    /// Number of (possibly stale) entries currently in the heap. The
    /// engine's same-thread fast path uses this to detect that a step
    /// pushed no new scheduling entries.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<O: MemoryObserver> Machine<'_, O> {
    /// Pops the next valid scheduling entry: the Ready thread holding a
    /// core with the smallest `(ready_at, index)` key, or `None` if no
    /// scheduled thread is runnable.
    pub(crate) fn next_ready(&mut self) -> Option<usize> {
        while let Some(Reverse((at, t))) = self.ready.heap.pop() {
            if self.ctxs[t].status == Status::Ready
                && self.core_of[t].is_some()
                && self.ctxs[t].ready_at == at
            {
                return Some(t);
            }
        }
        None
    }

    /// Debug-build equivalence check: the heap's pick must match what
    /// the seed's linear scan would have chosen.
    #[cfg(debug_assertions)]
    pub(crate) fn assert_pick_matches_scan(&self, picked: Option<usize>) {
        let scan = self
            .ctxs
            .iter()
            .enumerate()
            .filter(|(i, c)| c.status == Status::Ready && self.core_of[*i].is_some())
            .min_by_key(|(i, c)| (c.ready_at, *i))
            .map(|(i, _)| i);
        debug_assert_eq!(picked, scan, "ready-heap diverged from linear scan");
    }

    /// Releases thread `t`'s core (it finished) and hands it to a
    /// waiting Ready thread, if any.
    pub(crate) fn release_core(&mut self, t: usize) {
        let Some(core) = self.core_of[t].take() else {
            return;
        };
        let now = self.ctxs[t].ready_at;
        self.free_cores.push(core);
        self.schedule_waiting_threads_at(now);
    }

    /// Assigns cores (free ones first, then cores preempted from blocked
    /// holders) to Ready-but-unscheduled threads. Returns `true` if any
    /// assignment happened.
    pub(crate) fn schedule_waiting_threads(&mut self) -> bool {
        let now = self
            .ctxs
            .iter()
            .enumerate()
            .filter(|(i, c)| c.status == Status::Ready && self.core_of[*i].is_none())
            .map(|(_, c)| c.ready_at)
            .min()
            .unwrap_or(0);
        self.schedule_waiting_threads_at(now)
    }

    fn schedule_waiting_threads_at(&mut self, now: u64) -> bool {
        let mut any = false;
        loop {
            let next = self
                .ctxs
                .iter()
                .enumerate()
                .filter(|(i, c)| c.status == Status::Ready && self.core_of[*i].is_none())
                .min_by_key(|(i, c)| (c.ready_at, *i))
                .map(|(i, _)| i);
            let Some(t) = next else { break };
            if !self.acquire_core_for(t, now) {
                break;
            }
            any = true;
        }
        any
    }

    /// Finds a core for thread `t`: a free one, or one preempted from a
    /// blocked holder. Grants it with the §2.7.4 migration bump when the
    /// core differs from the thread's previous one.
    pub(crate) fn acquire_core_for(&mut self, t: usize, at: u64) -> bool {
        debug_assert!(self.core_of[t].is_none());
        let core = self.free_cores.pop().or_else(|| {
            (0..self.ctxs.len())
                .find(|&v| {
                    self.core_of[v].is_some()
                        && matches!(
                            self.ctxs[v].status,
                            Status::BlockedOnLock | Status::BlockedOnFlag
                        )
                })
                .and_then(|v| self.core_of[v].take())
        });
        let Some(core) = core else {
            return false;
        };
        self.core_of[t] = Some(core);
        let ctx = &mut self.ctxs[t];
        ctx.ready_at = ctx.ready_at.max(at) + self.cfg.reschedule_cycles;
        self.resync_on_reschedule(t, core);
        self.ready.push(self.ctxs[t].ready_at, t);
        true
    }
}
