//! Run statistics: timing, cache behaviour, bus traffic.

use cord_obs::MetricsRegistry;

/// Aggregate statistics of one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Execution time: the cycle at which the last core finished.
    pub cycles: u64,
    /// Finish time of each core.
    pub per_core_cycles: Vec<u64>,
    /// Total retired instructions per thread.
    pub instr_counts: Vec<u64>,
    /// Data reads committed.
    pub data_reads: u64,
    /// Data writes committed.
    pub data_writes: u64,
    /// Synchronization reads committed.
    pub sync_reads: u64,
    /// Synchronization writes committed.
    pub sync_writes: u64,
    /// Accesses satisfied by the local L1.
    pub l1_hits: u64,
    /// Accesses satisfied by the local L2.
    pub l2_hits: u64,
    /// Hits that required a shared→modified upgrade broadcast.
    pub upgrades: u64,
    /// Misses served by another core's cache.
    pub sibling_fills: u64,
    /// Misses served by main memory.
    pub memory_fills: u64,
    /// Busy cycles of the data bus.
    pub data_bus_busy: u64,
    /// Contention (wait) cycles on the data bus.
    pub data_bus_wait: u64,
    /// Busy cycles of the address/timestamp bus.
    pub addr_bus_busy: u64,
    /// Contention (wait) cycles on the address/timestamp bus.
    pub addr_bus_wait: u64,
    /// Busy cycles of the memory bus.
    pub mem_bus_busy: u64,
    /// Dynamic removable synchronization instances encountered (lock
    /// acquisitions and flag waits, including barrier-internal ones).
    pub removable_sync_instances: u64,
    /// Dynamic release instances encountered (flag sets, including the
    /// barrier release's internal flag set) — the second injection
    /// stream, removable via `InjectionPlan::remove_release`.
    pub release_sync_instances: u64,
    /// `true` if the injection plan's target instance was reached and
    /// removed during this run.
    pub injection_applied: bool,
    /// Extra timestamp-bus transactions issued by the observer (race
    /// check requests + memory-timestamp update broadcasts).
    pub observer_addr_transactions: u64,
    /// Busy cycles of the timestamp bus.
    pub ts_bus_busy: u64,
    /// Cycles cores spent stalled on in-flight race checks at
    /// retirement (§3.1).
    pub retirement_stall_cycles: u64,
    /// Thread migrations performed.
    pub migrations: u64,
    /// Directory lookups served by home banks (directory backend only;
    /// zero when snooping).
    pub directory_lookups: u64,
    /// Directory transactions that needed a forwarding hop.
    pub directory_forwards: u64,
    /// Total busy cycles across home-bank occupancy ports.
    pub directory_home_busy: u64,
    /// Total cycles requests waited for a busy home bank.
    pub directory_home_wait: u64,
}

impl SimStats {
    /// Total memory accesses of all kinds.
    pub fn total_accesses(&self) -> u64 {
        self.data_reads + self.data_writes + self.sync_reads + self.sync_writes
    }

    /// Fraction of accesses that hit in L1 (0 when there were none).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Accumulates every counter into `reg` under the `sim.` prefix.
    /// Per-core vectors are folded into sums so registries from
    /// different core counts stay mergeable.
    pub fn record_into(&self, reg: &mut MetricsRegistry) {
        reg.add("sim.cycles", self.cycles);
        reg.add(
            "sim.per_core_cycles_sum",
            self.per_core_cycles.iter().sum::<u64>(),
        );
        reg.add("sim.instructions", self.instr_counts.iter().sum::<u64>());
        reg.add("sim.data_reads", self.data_reads);
        reg.add("sim.data_writes", self.data_writes);
        reg.add("sim.sync_reads", self.sync_reads);
        reg.add("sim.sync_writes", self.sync_writes);
        reg.add("sim.l1_hits", self.l1_hits);
        reg.add("sim.l2_hits", self.l2_hits);
        reg.add("sim.upgrades", self.upgrades);
        reg.add("sim.sibling_fills", self.sibling_fills);
        reg.add("sim.memory_fills", self.memory_fills);
        reg.add("sim.data_bus_busy", self.data_bus_busy);
        reg.add("sim.data_bus_wait", self.data_bus_wait);
        reg.add("sim.addr_bus_busy", self.addr_bus_busy);
        reg.add("sim.addr_bus_wait", self.addr_bus_wait);
        reg.add("sim.mem_bus_busy", self.mem_bus_busy);
        reg.add(
            "sim.removable_sync_instances",
            self.removable_sync_instances,
        );
        reg.add("sim.release_sync_instances", self.release_sync_instances);
        reg.add("sim.injections_applied", u64::from(self.injection_applied));
        reg.add(
            "sim.observer_addr_transactions",
            self.observer_addr_transactions,
        );
        reg.add("sim.ts_bus_busy", self.ts_bus_busy);
        reg.add("sim.retirement_stall_cycles", self.retirement_stall_cycles);
        reg.add("sim.migrations", self.migrations);
        // Directory counters only exist on directory-backend runs;
        // emitting them conditionally keeps snooping registries (and
        // the fixtures that pin their bytes) unchanged.
        if self.directory_lookups > 0 {
            reg.add("sim.directory_lookups", self.directory_lookups);
            reg.add("sim.directory_forwards", self.directory_forwards);
            reg.add("sim.directory_home_busy", self.directory_home_busy);
            reg.add("sim.directory_home_wait", self.directory_home_wait);
        }
        reg.add("sim.runs", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = SimStats {
            data_reads: 6,
            data_writes: 2,
            sync_reads: 1,
            sync_writes: 1,
            l1_hits: 5,
            ..SimStats::default()
        };
        assert_eq!(s.total_accesses(), 10);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(SimStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn directory_counters_are_conditional() {
        let mut reg = MetricsRegistry::default();
        SimStats::default().record_into(&mut reg);
        assert!(reg.counters().keys().all(|k| !k.contains("directory")));
        let s = SimStats {
            directory_lookups: 3,
            directory_home_busy: 12,
            ..SimStats::default()
        };
        s.record_into(&mut reg);
        assert_eq!(reg.counter("sim.directory_lookups"), 3);
        assert_eq!(reg.counter("sim.directory_home_busy"), 12);
    }

    #[test]
    fn record_into_prefixes_and_accumulates() {
        let s = SimStats {
            cycles: 100,
            per_core_cycles: vec![90, 100],
            instr_counts: vec![40, 60],
            l1_hits: 7,
            injection_applied: true,
            ..SimStats::default()
        };
        let mut reg = MetricsRegistry::default();
        s.record_into(&mut reg);
        s.record_into(&mut reg);
        assert_eq!(reg.counter("sim.cycles"), 200);
        assert_eq!(reg.counter("sim.per_core_cycles_sum"), 380);
        assert_eq!(reg.counter("sim.instructions"), 200);
        assert_eq!(reg.counter("sim.l1_hits"), 14);
        assert_eq!(reg.counter("sim.injections_applied"), 2);
        assert_eq!(reg.counter("sim.runs"), 2);
    }
}
