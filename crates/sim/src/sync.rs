//! Synchronization semantics: mutexes, flags, and sense-reversing
//! barriers.
//!
//! The manager enforces *functional* synchronization behaviour (who may
//! proceed, who blocks, who wakes whom); the engine separately emits the
//! labeled memory accesses each primitive performs so detectors observe
//! the same traffic the paper's modified synchronization libraries
//! generate. Keeping semantics here — rather than deriving them from
//! simulated memory values — means fault injection can remove a
//! primitive's *accesses and ordering* without ever deadlocking the
//! simulation; see DESIGN.md.

use cord_trace::types::{AtomicId, BarrierId, FlagId, LockId, ThreadId};
use std::collections::VecDeque;

#[derive(Debug, Clone, Default)]
struct LockState {
    holder: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Clone, Default)]
struct FlagState {
    set: bool,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Clone, Default)]
struct BarrierState {
    /// Per-thread arrival counts. Episode `k` is complete when every
    /// participant has arrived at least `k + 1` times. Counting per
    /// thread (rather than a single counter) keeps the barrier sane when
    /// fault injection removes a thread's barrier *wait*: the escaped
    /// thread's early arrival at the next episode must not be confused
    /// with a missing participant of the current one.
    arrivals: Vec<u64>,
    /// Number of episodes already released.
    released: u64,
}

/// Functional state of all synchronization objects in a run.
#[derive(Debug, Clone)]
pub struct SyncManager {
    locks: Vec<LockState>,
    flags: Vec<FlagState>,
    barriers: Vec<BarrierState>,
    /// Per-atomic version counters backing CAS success/failure: a CAS
    /// attempt snapshots the version, and its commit succeeds only if
    /// no other thread's RMW committed (bumped the version) in between.
    atomics: Vec<u64>,
    participants: usize,
}

/// Result of arriving at a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierArrival {
    /// The episode this arrival belongs to (selects the release flag:
    /// `episode % 2`).
    pub episode: u64,
    /// `true` for the last arrival, which releases the barrier.
    pub is_last: bool,
}

impl SyncManager {
    /// A manager for `total_locks`/`total_flags`/`barriers` objects
    /// (including barrier-internal locks and flags) shared by
    /// `participants` threads.
    pub fn new(total_locks: u32, total_flags: u32, barriers: u32, participants: usize) -> Self {
        SyncManager {
            locks: vec![LockState::default(); total_locks as usize],
            flags: vec![FlagState::default(); total_flags as usize],
            barriers: vec![BarrierState::default(); barriers as usize],
            atomics: Vec::new(),
            participants,
        }
    }

    /// Adds `atomics` RMW word version counters (all starting at 0).
    #[must_use]
    pub fn with_atomics(mut self, atomics: u32) -> Self {
        self.atomics = vec![0; atomics as usize];
        self
    }

    /// Current version of atomic word `a` (bumped by every committed
    /// RMW, so a CAS whose snapshot is stale must retry).
    pub fn atomic_version(&self, a: AtomicId) -> u64 {
        self.atomics[a.0 as usize]
    }

    /// Records a committed RMW on atomic word `a`.
    pub fn atomic_bump(&mut self, a: AtomicId) {
        self.atomics[a.0 as usize] += 1;
    }

    /// Attempts to acquire `lock` for `thread`; on failure the thread is
    /// enqueued as a waiter and `false` is returned (the caller must
    /// block it).
    ///
    /// # Panics
    ///
    /// Panics if the thread already holds the lock (workload validation
    /// prevents this for user locks).
    pub fn try_acquire(&mut self, lock: LockId, thread: ThreadId) -> bool {
        let st = &mut self.locks[lock.0 as usize];
        match st.holder {
            None => {
                st.holder = Some(thread);
                true
            }
            Some(h) => {
                assert_ne!(h, thread, "{thread} re-acquiring held lock #{}", lock.0);
                st.waiters.push_back(thread);
                false
            }
        }
    }

    /// Releases `lock`; if a waiter exists it becomes the new holder and
    /// is returned so the engine can wake it.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is not the holder.
    pub fn release(&mut self, lock: LockId, thread: ThreadId) -> Option<ThreadId> {
        let st = &mut self.locks[lock.0 as usize];
        assert_eq!(
            st.holder,
            Some(thread),
            "{thread} releasing lock #{} it does not hold",
            lock.0
        );
        match st.waiters.pop_front() {
            Some(next) => {
                st.holder = Some(next);
                Some(next)
            }
            None => {
                st.holder = None;
                None
            }
        }
    }

    /// Current holder of `lock`.
    pub fn holder(&self, lock: LockId) -> Option<ThreadId> {
        self.locks[lock.0 as usize].holder
    }

    /// Whether `flag` is currently set.
    pub fn flag_is_set(&self, flag: FlagId) -> bool {
        self.flags[flag.0 as usize].set
    }

    /// Sets `flag` and returns all waiters to wake.
    pub fn flag_set(&mut self, flag: FlagId) -> Vec<ThreadId> {
        let st = &mut self.flags[flag.0 as usize];
        st.set = true;
        st.waiters.drain(..).collect()
    }

    /// Clears `flag`.
    pub fn flag_reset(&mut self, flag: FlagId) {
        self.flags[flag.0 as usize].set = false;
    }

    /// Enqueues `thread` as a waiter on an unset `flag`.
    ///
    /// # Panics
    ///
    /// Panics if the flag is already set (callers check first).
    pub fn flag_enqueue(&mut self, flag: FlagId, thread: ThreadId) {
        let st = &mut self.flags[flag.0 as usize];
        assert!(!st.set, "enqueue on already-set flag #{}", flag.0);
        st.waiters.push_back(thread);
    }

    /// Registers `thread`'s arrival at `barrier`. The arrival's episode
    /// is the thread's own arrival ordinal; the arrival that makes every
    /// participant's count exceed the released-episode count is the last
    /// one and releases the episode.
    pub fn barrier_arrive(&mut self, barrier: BarrierId, thread: ThreadId) -> BarrierArrival {
        let participants = self.participants;
        let st = &mut self.barriers[barrier.0 as usize];
        if st.arrivals.is_empty() {
            st.arrivals = vec![0; participants];
        }
        st.arrivals[thread.index()] += 1;
        let episode = st.arrivals[thread.index()] - 1;
        let completes = st.arrivals.iter().all(|&a| a > st.released);
        if completes {
            st.released += 1;
        }
        BarrierArrival {
            episode,
            is_last: completes,
        }
    }

    /// The episode a newly arriving thread at `barrier` would join
    /// (the count of episodes it has already passed).
    pub fn barrier_episode(&self, barrier: BarrierId) -> u64 {
        self.barriers[barrier.0 as usize].released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn uncontended_lock_acquires_immediately() {
        let mut s = SyncManager::new(1, 0, 0, 2);
        assert!(s.try_acquire(LockId(0), t(0)));
        assert_eq!(s.holder(LockId(0)), Some(t(0)));
        assert_eq!(s.release(LockId(0), t(0)), None);
        assert_eq!(s.holder(LockId(0)), None);
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut s = SyncManager::new(1, 0, 0, 3);
        assert!(s.try_acquire(LockId(0), t(0)));
        assert!(!s.try_acquire(LockId(0), t(1)));
        assert!(!s.try_acquire(LockId(0), t(2)));
        // Release hands the lock to the first waiter.
        assert_eq!(s.release(LockId(0), t(0)), Some(t(1)));
        assert_eq!(s.holder(LockId(0)), Some(t(1)));
        assert_eq!(s.release(LockId(0), t(1)), Some(t(2)));
        assert_eq!(s.release(LockId(0), t(2)), None);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_by_non_holder_panics() {
        let mut s = SyncManager::new(1, 0, 0, 2);
        s.try_acquire(LockId(0), t(0));
        s.release(LockId(0), t(1));
    }

    #[test]
    fn flags_wake_all_waiters() {
        let mut s = SyncManager::new(0, 1, 0, 3);
        assert!(!s.flag_is_set(FlagId(0)));
        s.flag_enqueue(FlagId(0), t(1));
        s.flag_enqueue(FlagId(0), t(2));
        let woken = s.flag_set(FlagId(0));
        assert_eq!(woken, vec![t(1), t(2)]);
        assert!(s.flag_is_set(FlagId(0)));
        s.flag_reset(FlagId(0));
        assert!(!s.flag_is_set(FlagId(0)));
    }

    #[test]
    fn atomic_versions_start_zero_and_bump() {
        let mut s = SyncManager::new(0, 0, 0, 2).with_atomics(2);
        assert_eq!(s.atomic_version(AtomicId(0)), 0);
        assert_eq!(s.atomic_version(AtomicId(1)), 0);
        s.atomic_bump(AtomicId(1));
        assert_eq!(s.atomic_version(AtomicId(0)), 0);
        assert_eq!(s.atomic_version(AtomicId(1)), 1);
    }

    #[test]
    fn barrier_counts_and_advances_episodes() {
        let mut s = SyncManager::new(0, 0, 1, 3);
        let b = BarrierId(0);
        assert_eq!(s.barrier_episode(b), 0);
        let a0 = s.barrier_arrive(b, t(0));
        let a1 = s.barrier_arrive(b, t(1));
        assert!(!a0.is_last && !a1.is_last);
        let a2 = s.barrier_arrive(b, t(2));
        assert!(a2.is_last);
        assert_eq!(a2.episode, 0);
        // Next episode begins fresh.
        assert_eq!(s.barrier_episode(b), 1);
        let b0 = s.barrier_arrive(b, t(0));
        assert_eq!(b0.episode, 1);
        assert!(!b0.is_last);
    }

    #[test]
    fn runaway_thread_cannot_release_an_episode_twice() {
        // A thread whose barrier wait was injected away arrives at the
        // next episode before the laggards finish the current one; its
        // early arrival must not complete episode 0 a second time.
        let mut s = SyncManager::new(0, 0, 1, 3);
        let b = BarrierId(0);
        s.barrier_arrive(b, t(0));
        s.barrier_arrive(b, t(1));
        // t0 escapes its wait and arrives again — episode 1 for t0.
        let early = s.barrier_arrive(b, t(0));
        assert_eq!(early.episode, 1);
        assert!(!early.is_last, "episode 0 is not complete yet");
        // t2 finally arrives: NOW episode 0 releases.
        let last = s.barrier_arrive(b, t(2));
        assert!(last.is_last);
        assert_eq!(last.episode, 0);
        assert_eq!(s.barrier_episode(b), 1);
        // Completing episode 1 needs t1 and t2 again (t0 already there).
        assert!(!s.barrier_arrive(b, t(1)).is_last);
        let l2 = s.barrier_arrive(b, t(2));
        assert!(l2.is_last);
        assert_eq!(l2.episode, 1);
    }
}
