//! Synchronization-op expansion (§3.4): turns workload sync primitives
//! into the labeled access sequences the paper's modified
//! synchronization libraries emit, and executes the resulting steps.
//!
//! * `lock`: a sync read of the lock word, then a sync write that takes
//!   it (blocked acquirers re-read on wake, observing the releaser's
//!   sync write — this is the race outcome that orders release before
//!   acquire);
//! * `unlock` / `flag set` / `flag reset`: one sync write;
//! * `flag wait`: a sync read; if unset, block (or spin) and re-read on
//!   wake;
//! * `barrier`: lock + counter read/update + (last arrival: counter
//!   reset, next-flag reset, current-flag set) + unlock + flag wait,
//!   the sense-reversing mutex+flag composition of §3.4;
//! * `atomic RMW` (`cas_loop` / `fetch_add` / `exchange`): a sync read
//!   of the atomic word (the acquire side — a CAS attempt's load, or
//!   an unconditional RMW's fetch) followed by a sync write that
//!   commits the new value (the release side). A CAS whose version
//!   snapshot went stale between attempt and commit — another thread's
//!   RMW committed in the window — re-reads and retries, which is
//!   exactly the failure-path re-read of a hardware CAS loop. The
//!   sync-labeled read/write pair gives an RMW the same clock
//!   semantics as a lock acquire + release on the same word (see
//!   DESIGN.md "RMW clock-commit semantics").

use crate::engine::{Machine, Status};
use crate::errors::StuckState;
use crate::observer::{AccessKind, MemoryObserver};
use cord_trace::op::{AtomicRmwKind, Op};
use cord_trace::types::{AtomicId, BarrierId, FlagId, LockId, ThreadId};

/// One executable micro-step of an expanded workload op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    Access {
        addr: cord_trace::types::Addr,
        kind: AccessKind,
    },
    LockSpin(LockId),
    LockGranted(LockId),
    LockTake(LockId),
    Release(LockId),
    SetFlag(FlagId),
    ResetFlag(FlagId),
    WaitFlag(FlagId),
    BarrierCtl(BarrierId),
    BarrierWait(BarrierId, u64),
    BarrierUnlock(BarrierId),
    /// CAS attempt: sync-read the atomic word and snapshot its version.
    CasAttempt(AtomicId),
    /// CAS commit: if the snapshot version is still current, sync-write
    /// (success); otherwise re-attempt (the failure-path re-read).
    CasCommit(AtomicId, u64),
    /// Unconditional RMW (fetch_add/exchange) fetch: sync-read.
    RmwAcquire(AtomicId),
    /// Unconditional RMW commit: sync-write, always succeeds.
    RmwCommit(AtomicId),
}

impl<O: MemoryObserver> Machine<'_, O> {
    /// Expands one fetched workload op into this thread's step queue,
    /// applying wait-side injection removals as it goes.
    pub(crate) fn expand_op(&mut self, c: usize, op: Op) {
        let layout = self.workload.layout();
        match op {
            Op::Read(a) => self.ctxs[c].steps.push_back(Step::Access {
                addr: a,
                kind: AccessKind::DataRead,
            }),
            Op::Write(a) => self.ctxs[c].steps.push_back(Step::Access {
                addr: a,
                kind: AccessKind::DataWrite,
            }),
            Op::Compute(n) => {
                let ctx = &mut self.ctxs[c];
                ctx.ready_at += u64::from(n);
                ctx.instr += u64::from(n);
            }
            Op::Lock(l) => {
                if self.take_instance(c) {
                    self.ctxs[c].skip_unlocks.insert(l.0);
                } else {
                    self.ctxs[c].steps.push_back(Step::LockSpin(l));
                }
            }
            Op::Unlock(l) => {
                if !self.ctxs[c].skip_unlocks.remove(&l.0) {
                    self.ctxs[c].steps.push_back(Step::Release(l));
                }
            }
            Op::FlagSet(g) => self.ctxs[c].steps.push_back(Step::SetFlag(g)),
            Op::FlagReset(g) => self.ctxs[c].steps.push_back(Step::ResetFlag(g)),
            Op::FlagWait(g) => {
                if !self.take_instance(c) {
                    self.ctxs[c].steps.push_back(Step::WaitFlag(g));
                }
            }
            Op::Atomic(a, kind) => match kind {
                AtomicRmwKind::CasLoop => {
                    // A removed CAS loop (§3.4's removed acquire,
                    // extended to lock-free code) skips the whole RMW:
                    // neither the acquire-read nor the release-write
                    // happens, exactly as a removed lock skips both
                    // its acquire and the matching release.
                    if !self.take_instance(c) {
                        self.ctxs[c].steps.push_back(Step::CasAttempt(a));
                    }
                }
                AtomicRmwKind::FetchAdd | AtomicRmwKind::Exchange => {
                    self.ctxs[c].steps.push_back(Step::RmwAcquire(a));
                }
            },
            Op::Barrier(b) => {
                let counter = layout.barrier_counter_addr(b);
                if self.take_instance(c) {
                    self.ctxs[c].barrier_lock_skipped = true;
                } else {
                    let bl = layout.barrier_lock(b);
                    self.ctxs[c].steps.push_back(Step::LockSpin(bl));
                }
                let ctx = &mut self.ctxs[c];
                ctx.steps.push_back(Step::Access {
                    addr: counter,
                    kind: AccessKind::DataRead,
                });
                ctx.steps.push_back(Step::Access {
                    addr: counter,
                    kind: AccessKind::DataWrite,
                });
                ctx.steps.push_back(Step::BarrierCtl(b));
            }
        }
    }

    /// Executes one micro-step of thread `c` to completion.
    pub(crate) fn exec_step(&mut self, c: usize, step: Step) {
        let layout = *self.workload.layout();
        match step {
            Step::Access { addr, kind } => {
                self.do_access(c, addr, kind);
            }
            Step::LockSpin(l) => {
                self.do_access(c, layout.lock_addr(l), AccessKind::SyncRead);
                let thread = self.ctxs[c].thread;
                if self.sync.try_acquire(l, thread) {
                    self.ctxs[c].steps.push_front(Step::LockTake(l));
                } else {
                    self.ctxs[c].status = Status::BlockedOnLock;
                    self.ctxs[c].stuck = StuckState::BlockedOnLock(l);
                }
            }
            Step::LockGranted(l) => {
                // Woken by a release that transferred us the lock: the
                // re-read observes the releaser's sync write, which is
                // the race outcome ordering release before acquire.
                self.do_access(c, layout.lock_addr(l), AccessKind::SyncRead);
                self.ctxs[c].steps.push_front(Step::LockTake(l));
            }
            Step::LockTake(l) => {
                self.do_access(c, layout.lock_addr(l), AccessKind::SyncWrite);
            }
            Step::Release(l) => {
                let done = self.do_access(c, layout.lock_addr(l), AccessKind::SyncWrite);
                let thread = self.ctxs[c].thread;
                if let Some(next) = self.sync.release(l, thread) {
                    self.wake(next, done, Step::LockGranted(l));
                }
            }
            Step::SetFlag(g) => {
                if self.take_release_instance(c) {
                    // Removed release (§3.4 extended to the release
                    // side): the flag write never happens and no waiter
                    // is woken. Blocking waiters deadlock; spinning
                    // waiters livelock until the watchdog fires.
                    return;
                }
                let done = self.do_access(c, layout.flag_addr(g), AccessKind::SyncWrite);
                for tid in self.sync.flag_set(g) {
                    self.wake(tid, done, Step::WaitFlag(g));
                }
            }
            Step::ResetFlag(g) => {
                self.do_access(c, layout.flag_addr(g), AccessKind::SyncWrite);
                self.sync.flag_reset(g);
            }
            Step::WaitFlag(g) => {
                self.do_access(c, layout.flag_addr(g), AccessKind::SyncRead);
                if !self.sync.flag_is_set(g) {
                    if let Some(spin) = self.cfg.flag_spin_cycles {
                        // Spin-wait: stay Ready and re-poll after a
                        // back-off. The thread burns cycles without
                        // fetching new ops, so a never-set flag shows
                        // up as a livelock, not a deadlock.
                        let ctx = &mut self.ctxs[c];
                        ctx.ready_at += spin;
                        ctx.steps.push_front(Step::WaitFlag(g));
                        ctx.stuck = StuckState::SpinningOnFlag(g);
                    } else {
                        let thread = self.ctxs[c].thread;
                        self.sync.flag_enqueue(g, thread);
                        self.ctxs[c].status = Status::BlockedOnFlag;
                        self.ctxs[c].stuck = StuckState::BlockedOnFlag(g);
                    }
                } else {
                    self.ctxs[c].stuck = StuckState::Runnable;
                }
            }
            Step::BarrierCtl(b) => {
                let thread = self.ctxs[c].thread;
                let arrival = self.sync.barrier_arrive(b, thread);
                let (f0, f1) = layout.barrier_flags(b);
                let cur = if arrival.episode.is_multiple_of(2) {
                    f0
                } else {
                    f1
                };
                let next = if arrival.episode.is_multiple_of(2) {
                    f1
                } else {
                    f0
                };
                let ctx = &mut self.ctxs[c];
                if arrival.is_last {
                    // Reset the counter, arm the next episode's flag,
                    // release this episode, drop the internal lock.
                    ctx.steps.push_front(Step::BarrierUnlock(b));
                    ctx.steps.push_front(Step::SetFlag(cur));
                    ctx.steps.push_front(Step::ResetFlag(next));
                    ctx.steps.push_front(Step::Access {
                        addr: layout.barrier_counter_addr(b),
                        kind: AccessKind::DataWrite,
                    });
                    if self.cfg.migrate_at_barriers {
                        self.pending_migration = true;
                    }
                } else {
                    ctx.steps.push_front(Step::BarrierWait(b, arrival.episode));
                    ctx.steps.push_front(Step::BarrierUnlock(b));
                }
            }
            Step::BarrierWait(b, episode) => {
                if !self.take_instance(c) {
                    let (f0, f1) = layout.barrier_flags(b);
                    let flag = if episode % 2 == 0 { f0 } else { f1 };
                    self.ctxs[c].steps.push_front(Step::WaitFlag(flag));
                }
            }
            Step::CasAttempt(a) => {
                self.do_access(c, layout.atomic_addr(a), AccessKind::SyncRead);
                let seen = self.sync.atomic_version(a);
                self.ctxs[c].steps.push_front(Step::CasCommit(a, seen));
            }
            Step::CasCommit(a, seen) => {
                if self.sync.atomic_version(a) == seen {
                    self.do_access(c, layout.atomic_addr(a), AccessKind::SyncWrite);
                    self.sync.atomic_bump(a);
                } else {
                    // Lost the race to another committer: the CAS
                    // fails and the loop re-reads the word. Progress
                    // is guaranteed — every failure implies some other
                    // thread committed, consuming its finite ops.
                    self.ctxs[c].steps.push_front(Step::CasAttempt(a));
                }
            }
            Step::RmwAcquire(a) => {
                self.do_access(c, layout.atomic_addr(a), AccessKind::SyncRead);
                self.ctxs[c].steps.push_front(Step::RmwCommit(a));
            }
            Step::RmwCommit(a) => {
                self.do_access(c, layout.atomic_addr(a), AccessKind::SyncWrite);
                self.sync.atomic_bump(a);
            }
            Step::BarrierUnlock(b) => {
                if self.ctxs[c].barrier_lock_skipped {
                    self.ctxs[c].barrier_lock_skipped = false;
                } else {
                    self.ctxs[c]
                        .steps
                        .push_front(Step::Release(layout.barrier_lock(b)));
                }
            }
        }
    }

    /// Wakes `thread` at time `at`, prepending `resume` to its steps; if
    /// the thread lost its core while blocked, it queues for the next
    /// free one.
    pub(crate) fn wake(&mut self, thread: ThreadId, at: u64, resume: Step) {
        let t = thread.index();
        let ctx = &mut self.ctxs[t];
        debug_assert_ne!(ctx.status, Status::Ready, "waking a ready thread");
        ctx.status = Status::Ready;
        ctx.stuck = StuckState::Runnable;
        ctx.ready_at = ctx.ready_at.max(at);
        ctx.steps.push_front(resume);
        if self.core_of[t].is_none() {
            self.acquire_core_for(t, at);
        } else {
            self.ready.push(self.ctxs[t].ready_at, t);
        }
    }
}
