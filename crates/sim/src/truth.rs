//! Ground-truth functional outcomes, used to verify deterministic replay.
//!
//! The simulator commits memory accesses one at a time in global time
//! order, which defines a sequentially consistent execution. For every
//! word we track a monotonically increasing *write version*; each read
//! observes the version of the last write to its word. A run's outcome is
//! summarized as one order-sensitive hash per thread over
//! `(instr_index, addr, kind, observed_version)` tuples — two executions
//! have identical per-thread hashes iff every thread observed exactly the
//! same reads-see-writes relation in the same program order, which is the
//! correctness criterion for CORD's deterministic replay (§3.3: "the
//! entire execution can be accurately replayed").

use crate::observer::AccessKind;
use cord_trace::layout::dense_word_index;
use cord_trace::types::{Addr, ThreadId};

/// One access in a thread's resolved (post-expansion) stream, captured
/// when [`MachineConfig::capture_resolved`](crate::config::MachineConfig)
/// is on. The replayer re-executes these streams under the order log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedAccess {
    /// Thread-local instruction index *before* the access retires.
    pub instr_index: u64,
    /// Word accessed.
    pub addr: Addr,
    /// Access kind.
    pub kind: AccessKind,
}

/// FNV-1a step over a 64-bit value.
#[inline]
pub fn fnv_fold(hash: u64, value: u64) -> u64 {
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = hash;
    for b in value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a offset basis (the initial value [`fnv_fold`] chains start
/// from).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One committed access whose hash fold has been deferred (see
/// [`GroundTruth::commit`]).
#[derive(Debug, Clone, Copy)]
struct PendingFold {
    thread: u32,
    is_write: u32,
    instr_index: u64,
    addr_byte: u64,
    version: u64,
}

/// Deferred-fold chunk size: bounds the buffer at ~128 KiB while
/// keeping flushes rare.
const FOLD_CHUNK: usize = 4096;

/// Tracks write versions and per-thread outcome hashes during a run.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Per-word write version (how many writes this word has seen),
    /// indexed by the dense word index and grown on demand. Versions are
    /// per-word, not global, so reorderings of *non-conflicting*
    /// accesses leave every hash unchanged — replay verification must
    /// only be sensitive to conflict outcomes.
    versions: Vec<u64>,
    thread_hashes: Vec<u64>,
    /// Commits whose FNV folds have not been applied yet. Each
    /// [`fnv_fold`] chain is a 32-deep serial multiply per commit;
    /// folding inline puts that latency on the engine's critical path.
    /// Buffering commits and folding a chunk at a time keeps the exact
    /// per-thread fold order (the buffer is drained in global commit
    /// order) while adjacent buffer entries — which usually belong to
    /// different threads and therefore different hash chains — overlap
    /// in the CPU's out-of-order window.
    pending: Vec<PendingFold>,
    resolved: Option<Vec<Vec<ResolvedAccess>>>,
    total_writes: u64,
    total_reads: u64,
}

impl GroundTruth {
    /// A tracker for `threads` threads; pass `capture_resolved = true` to
    /// also record per-thread resolved access streams for the replayer.
    pub fn new(threads: usize, capture_resolved: bool) -> Self {
        GroundTruth {
            versions: Vec::new(),
            thread_hashes: vec![FNV_OFFSET; threads],
            pending: Vec::with_capacity(FOLD_CHUNK),
            resolved: capture_resolved.then(|| vec![Vec::new(); threads]),
            total_writes: 0,
            total_reads: 0,
        }
    }

    /// Commits one access and folds its outcome into the thread's hash.
    ///
    /// The version bookkeeping happens immediately (it is
    /// order-sensitive across threads); the hash folds themselves are
    /// buffered and applied chunk-wise in the same global order, which
    /// produces bit-identical per-thread hashes — each thread's chain
    /// still sees its own commits in program order.
    pub fn commit(&mut self, thread: ThreadId, instr_index: u64, addr: Addr, kind: AccessKind) {
        let w = dense_word_index(addr);
        let version = if kind.is_write() {
            self.total_writes += 1;
            if w >= self.versions.len() {
                self.versions.resize(w + 1, 0);
            }
            self.versions[w] += 1;
            self.versions[w]
        } else {
            self.total_reads += 1;
            self.versions.get(w).copied().unwrap_or(0)
        };
        self.pending.push(PendingFold {
            thread: thread.index() as u32,
            is_write: kind.is_write() as u32,
            instr_index,
            addr_byte: addr.byte(),
            version,
        });
        if self.pending.len() >= FOLD_CHUNK {
            self.flush_folds();
        }
        if let Some(streams) = &mut self.resolved {
            streams[thread.index()].push(ResolvedAccess {
                instr_index,
                addr,
                kind,
            });
        }
    }

    /// Applies every buffered fold in global commit order. Distinct
    /// threads' chains are independent, so the serial multiply chains of
    /// adjacent (different-thread) entries overlap instead of
    /// serializing behind the engine's step loop.
    fn flush_folds(&mut self) {
        for p in self.pending.drain(..) {
            let h = &mut self.thread_hashes[p.thread as usize];
            let mut v = *h;
            v = fnv_fold(v, p.instr_index);
            v = fnv_fold(v, p.addr_byte);
            v = fnv_fold(v, u64::from(p.is_write));
            v = fnv_fold(v, p.version);
            *h = v;
        }
    }

    /// Finalizes into a summary.
    pub fn into_summary(mut self) -> TruthSummary {
        self.flush_folds();
        TruthSummary {
            thread_hashes: self.thread_hashes,
            resolved: self.resolved,
            total_writes: self.total_writes,
            total_reads: self.total_reads,
        }
    }
}

/// The functional outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthSummary {
    /// Order-sensitive outcome hash per thread.
    pub thread_hashes: Vec<u64>,
    /// Per-thread resolved access streams (present iff capture was on).
    pub resolved: Option<Vec<Vec<ResolvedAccess>>>,
    /// Total committed writes.
    pub total_writes: u64,
    /// Total committed reads.
    pub total_reads: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn identical_commit_sequences_hash_identically() {
        let mut a = GroundTruth::new(2, false);
        let mut b = GroundTruth::new(2, false);
        for g in [&mut a, &mut b] {
            g.commit(t(0), 0, Addr::new(0x40), AccessKind::DataWrite);
            g.commit(t(1), 0, Addr::new(0x40), AccessKind::DataRead);
        }
        assert_eq!(
            a.into_summary().thread_hashes,
            b.into_summary().thread_hashes
        );
    }

    #[test]
    fn read_sees_latest_write_version() {
        // Different write orders change what the reader observes and so
        // change the reader's hash.
        let mut a = GroundTruth::new(3, false);
        a.commit(t(0), 0, Addr::new(0x40), AccessKind::DataWrite);
        a.commit(t(1), 0, Addr::new(0x40), AccessKind::DataWrite);
        a.commit(t(2), 0, Addr::new(0x40), AccessKind::DataRead);

        let mut b = GroundTruth::new(3, false);
        b.commit(t(1), 0, Addr::new(0x40), AccessKind::DataWrite);
        b.commit(t(0), 0, Addr::new(0x40), AccessKind::DataWrite);
        b.commit(t(2), 0, Addr::new(0x40), AccessKind::DataRead);

        let sa = a.into_summary();
        let sb = b.into_summary();
        // The reader in run A saw version 2 from t1, in run B saw
        // version 2 from t0 — versions are positional so the hashes for
        // the *writers* differ while the reader's happens to match; the
        // full vector comparison distinguishes the runs.
        assert_ne!(sa.thread_hashes, sb.thread_hashes);
    }

    #[test]
    fn read_before_any_write_sees_version_zero() {
        let mut g = GroundTruth::new(1, false);
        g.commit(t(0), 0, Addr::new(0x80), AccessKind::DataRead);
        let s = g.into_summary();
        assert_eq!(s.total_reads, 1);
        assert_eq!(s.total_writes, 0);
    }

    #[test]
    fn resolved_streams_capture_order() {
        let mut g = GroundTruth::new(2, true);
        g.commit(t(0), 0, Addr::new(0x40), AccessKind::DataWrite);
        g.commit(t(0), 1, Addr::new(0x44), AccessKind::DataRead);
        g.commit(t(1), 5, Addr::new(0x40), AccessKind::SyncRead);
        let s = g.into_summary();
        let streams = s.resolved.expect("captured");
        assert_eq!(streams[0].len(), 2);
        assert_eq!(streams[1].len(), 1);
        assert_eq!(streams[0][1].addr, Addr::new(0x44));
        assert_eq!(streams[1][0].instr_index, 5);
    }

    #[test]
    fn fnv_fold_is_order_sensitive() {
        let a = fnv_fold(fnv_fold(FNV_OFFSET, 1), 2);
        let b = fnv_fold(fnv_fold(FNV_OFFSET, 2), 1);
        assert_ne!(a, b);
    }
}
