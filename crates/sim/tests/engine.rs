//! Behavioural tests of the execution engine, exercised through the
//! public `cord_sim` API (they moved here from `src/engine.rs` when the
//! engine was split into layered modules — nothing they touch is
//! crate-private).

use cord_sim::config::{MachineConfig, Watchdog};
use cord_sim::engine::{InjectionPlan, Machine, RunOutput, SimError, StuckState};
use cord_sim::observer::{AccessKind, NullObserver};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

fn run_workload(w: &Workload, seed: u64) -> RunOutput {
    let m = Machine::new(
        MachineConfig::paper_4core(),
        w,
        NullObserver,
        seed,
        InjectionPlan::none(),
    );
    let (out, _) = m.run().expect("no deadlock");
    out
}

mod engine_tests {
    use super::*;

    #[test]
    fn single_thread_sequential_run() {
        let mut b = WorkloadBuilder::new("seq", 1);
        let d = b.alloc_words(4);
        b.thread_mut(0)
            .write(d.word(0))
            .read(d.word(0))
            .compute(100)
            .write(d.word(1));
        let w = b.build();
        let out = run_workload(&w, 1);
        assert_eq!(out.stats.data_reads, 1);
        assert_eq!(out.stats.data_writes, 2);
        assert_eq!(out.stats.instr_counts[0], 103);
        assert!(out.stats.cycles > 600); // at least one memory fetch
        assert_eq!(out.stats.memory_fills, 1);
        assert!(out.stats.l1_hits >= 2);
    }

    #[test]
    fn lock_provides_mutual_exclusion_ordering() {
        let mut b = WorkloadBuilder::new("lock", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let out = run_workload(&w, 7);
        // 2 acquires (read+write) + 2 releases (write) minimum; the
        // blocked acquirer re-reads, adding one more sync read.
        assert!(out.stats.sync_writes >= 4);
        assert!(out.stats.sync_reads >= 2);
        assert_eq!(out.stats.data_reads, 2);
        assert_eq!(out.stats.data_writes, 2);
    }

    #[test]
    fn flag_orders_producer_consumer() {
        let mut b = WorkloadBuilder::new("flag", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(5000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        let w = b.build();
        let out = run_workload(&w, 3);
        // The consumer blocked (its first flag read saw unset) and was
        // woken, so it read the flag at least twice.
        assert!(out.stats.sync_reads >= 2);
        assert_eq!(out.stats.sync_writes, 1);
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        let mut b = WorkloadBuilder::new("barrier", 4);
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(16);
        for t in 0..4 {
            b.thread_mut(t)
                .compute((t as u32 + 1) * 1000)
                .write(d.word(t as u64))
                .barrier(bar)
                .read(d.word(((t + 1) % 4) as u64));
        }
        let w = b.build();
        let out = run_workload(&w, 11);
        // Each thread: 1 write + 1 read data, plus 2 counter accesses.
        assert_eq!(out.stats.data_writes, 4 + 4 + 1); // +1 counter reset
        assert_eq!(out.stats.data_reads, 4 + 4);
        // 4 removable instances for the internal lock + 3 for waits.
        assert_eq!(out.stats.removable_sync_instances, 7);
        assert!(!out.stats.injection_applied);
    }

    #[test]
    fn barrier_repeats_across_episodes() {
        let mut b = WorkloadBuilder::new("barrier2", 3);
        let bar = b.alloc_barrier();
        let d = b.alloc_words(3);
        for t in 0..3 {
            let tb = &mut b.thread_mut(t);
            for _ in 0..4 {
                tb.write(d.word(t as u64)).barrier(bar);
            }
        }
        let w = b.build();
        let out = run_workload(&w, 5);
        assert_eq!(out.stats.data_writes, 3 * 4 + 3 * 4 + 4); // data + counter inc per arrival + resets
    }

    #[test]
    fn injection_removes_lock_and_its_unlock() {
        let mut b = WorkloadBuilder::new("inj", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let baseline = run_workload(&w, 9);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            9,
            InjectionPlan::remove_nth(0),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert!(out.stats.injection_applied);
        // The removed acquire+release eliminates sync accesses.
        assert!(out.stats.sync_writes < baseline.stats.sync_writes);
        assert_eq!(out.stats.removable_sync_instances, 2);
    }

    #[test]
    fn injection_removes_flag_wait() {
        let mut b = WorkloadBuilder::new("injf", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(10_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            13,
            InjectionPlan::remove_nth(0),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert!(out.stats.injection_applied);
        // The reader no longer waits: it finishes long before the writer.
        assert!(out.stats.per_core_cycles[1] < out.stats.per_core_cycles[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = WorkloadBuilder::new("det", 4);
        let l = b.alloc_lock();
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(64);
        for t in 0..4 {
            let tb = &mut b.thread_mut(t);
            for i in 0..16 {
                tb.lock(l)
                    .update(d.word((t as u64 * 16 + i) % 64))
                    .unlock(l)
                    .compute(50);
            }
            tb.barrier(bar);
        }
        let w = b.build();
        let a = run_workload(&w, 42);
        let b2 = run_workload(&w, 42);
        assert_eq!(a.stats, b2.stats);
        assert_eq!(a.truth.thread_hashes, b2.truth.thread_hashes);
        // A different seed gives a different schedule (almost surely).
        // The total cycle count can tie — the lock convoy absorbs
        // jitter — so compare the full stats (bus waits, per-core
        // retire times), which are schedule-sensitive.
        let c = run_workload(&w, 43);
        assert_ne!(a.stats, c.stats);
    }

    #[test]
    fn migration_rotates_threads_at_barriers() {
        let mut b = WorkloadBuilder::new("mig", 4);
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(4);
        for t in 0..4 {
            b.thread_mut(t)
                .write(d.word(t as u64))
                .barrier(bar)
                .read(d.word(t as u64))
                .barrier(bar)
                .read(d.word(t as u64));
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core().with_barrier_migration(),
            &w,
            NullObserver,
            17,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert_eq!(out.stats.migrations, 8); // 4 threads x 2 barriers
                                             // After migrating away, the second read misses (data is in the
                                             // old core's cache).
        assert!(out.stats.sibling_fills > 0);
    }

    #[test]
    fn truth_reflects_lock_serialization() {
        // With a lock, the two updates serialize; the final version
        // count is exactly 2 writes regardless of schedule.
        let mut b = WorkloadBuilder::new("truth", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let out = run_workload(&w, 21);
        // Truth counts every committed access, sync included.
        assert_eq!(
            out.truth.total_writes,
            out.stats.data_writes + out.stats.sync_writes
        );
        assert_eq!(
            out.truth.total_reads,
            out.stats.data_reads + out.stats.sync_reads
        );
        assert_eq!(out.stats.data_writes, 2);
        assert_eq!(out.stats.data_reads, 2);
    }

    #[test]
    fn resolved_capture_produces_streams() {
        let mut b = WorkloadBuilder::new("cap", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core().with_resolved_capture(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        let streams = out.truth.resolved.expect("captured");
        assert_eq!(streams.len(), 2);
        assert!(streams[0].iter().any(|r| r.kind == AccessKind::SyncWrite));
        assert!(streams[1].iter().any(|r| r.kind == AccessKind::DataRead));
    }
}

mod engine_edge_tests {
    use super::*;

    /// Fewer threads than cores: the spare cores stay idle and the run
    /// completes normally.
    #[test]
    fn fewer_threads_than_cores() {
        let mut b = WorkloadBuilder::new("two-of-four", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert_eq!(out.stats.instr_counts.len(), 2);
        assert!(out.stats.cycles > 0);
    }

    /// Flag reset makes a flag reusable: a second wait after a reset
    /// blocks until the second set.
    #[test]
    fn flag_reset_enables_reuse() {
        let mut b = WorkloadBuilder::new("flag-reuse", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(2);
        b.thread_mut(0)
            .compute(5_000)
            .write(d.word(0))
            .flag_set(g)
            .compute(50_000)
            .write(d.word(1))
            .flag_set(g);
        b.thread_mut(1)
            .flag_wait(g)
            .read(d.word(0))
            .flag_reset(g)
            .flag_wait(g)
            .read(d.word(1));
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        // The consumer's second read happens after the producer's second
        // write: its core finishes after the 50k-cycle gap.
        assert!(out.stats.per_core_cycles[1] > 50_000);
    }

    /// With jitter disabled the machine is fully deterministic across
    /// any two seeds.
    #[test]
    fn zero_jitter_removes_seed_sensitivity() {
        let mut b = WorkloadBuilder::new("nojit", 2);
        let d = b.alloc_line_aligned(8);
        for t in 0..2 {
            for i in 0..4 {
                b.thread_mut(t)
                    .update(d.word((t as u64 * 4 + i) % 8))
                    .compute(10);
            }
        }
        let w = b.build();
        let run = |seed| {
            let mut cfg = MachineConfig::paper_4core();
            cfg.jitter_cycles = 0;
            let m = Machine::new(cfg, &w, NullObserver, seed, InjectionPlan::none());
            m.run().expect("ok").0.stats
        };
        assert_eq!(run(1), run(999));
    }

    /// A lock under heavy contention hands off FIFO: every thread gets
    /// its critical section (run terminates) and sync writes match
    /// 2 per acquire-release pair.
    #[test]
    fn contended_lock_serves_all_threads() {
        let mut b = WorkloadBuilder::new("contend", 4);
        let l = b.alloc_lock();
        let d = b.alloc_words(1);
        for t in 0..4 {
            for _ in 0..5 {
                b.thread_mut(t).lock(l).update(d.word(0)).unlock(l);
            }
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            3,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("no deadlock");
        // 20 acquires (take write) + 20 releases.
        assert_eq!(out.stats.sync_writes, 40);
        assert_eq!(out.stats.data_reads, 20);
        assert_eq!(out.stats.data_writes, 20);
    }

    /// An uncontended CAS expands to exactly one acquire-read and one
    /// release-write of the atomic word, and counts as one removable
    /// sync instance (its failure-path re-read is what §3.4-style
    /// injection removes).
    #[test]
    fn uncontended_cas_is_one_read_one_write() {
        let mut b = WorkloadBuilder::new("cas1", 1);
        let a = b.alloc_atomic();
        b.thread_mut(0).cas_loop(a);
        let w = b.build();
        let out = run_workload(&w, 1);
        assert_eq!(out.stats.sync_reads, 1);
        assert_eq!(out.stats.sync_writes, 1);
        assert_eq!(out.stats.removable_sync_instances, 1);
    }

    /// Contended CAS loops all eventually commit: exactly one sync
    /// write per loop, with failures showing up as extra sync reads.
    #[test]
    fn contended_cas_loops_all_commit() {
        let mut b = WorkloadBuilder::new("cas-contend", 4);
        let a = b.alloc_atomic();
        for t in 0..4 {
            for _ in 0..5 {
                b.thread_mut(t).cas_loop(a);
            }
        }
        let w = b.build();
        let out = run_workload(&w, 3);
        assert_eq!(out.stats.sync_writes, 20);
        assert!(out.stats.sync_reads >= 20);
        assert_eq!(out.stats.removable_sync_instances, 20);
    }

    /// fetch_add and exchange never fail and are never removable.
    #[test]
    fn unconditional_rmws_always_commit() {
        let mut b = WorkloadBuilder::new("rmw", 2);
        let a = b.alloc_atomic();
        b.thread_mut(0).fetch_add(a).fetch_add(a);
        b.thread_mut(1).exchange(a);
        let w = b.build();
        let out = run_workload(&w, 5);
        assert_eq!(out.stats.sync_reads, 3);
        assert_eq!(out.stats.sync_writes, 3);
        assert_eq!(out.stats.removable_sync_instances, 0);
    }

    /// An injected CAS skips the whole RMW — no acquire-read, no
    /// release-write — mirroring how a removed lock skips both the
    /// acquire and its matching release.
    #[test]
    fn injection_removes_whole_cas() {
        let mut b = WorkloadBuilder::new("inj-cas", 2);
        let a = b.alloc_atomic();
        b.thread_mut(0).cas_loop(a);
        b.thread_mut(1).compute(5000).cas_loop(a);
        let w = b.build();
        let baseline = run_workload(&w, 9);
        assert_eq!(baseline.stats.sync_writes, 2);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            9,
            InjectionPlan::remove_nth(0),
        );
        let (out, _) = m.run().expect("no deadlock");
        assert!(out.stats.injection_applied);
        assert_eq!(out.stats.sync_writes, 1);
        assert_eq!(out.stats.sync_reads, 1);
        assert_eq!(out.stats.removable_sync_instances, 2);
    }
}

mod watchdog_tests {
    use super::*;

    /// Producer sets a flag the consumer waits on.
    fn flag_pair() -> Workload {
        let mut b = WorkloadBuilder::new("wd-flag", 2);
        let g = b.alloc_flag();
        let d = b.alloc_words(1);
        b.thread_mut(0).compute(2_000).write(d.word(0)).flag_set(g);
        b.thread_mut(1).flag_wait(g).read(d.word(0));
        b.build()
    }

    #[test]
    fn release_instances_are_counted() {
        let w = flag_pair();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("clean run");
        assert_eq!(out.stats.release_sync_instances, 1);
        assert!(!out.stats.injection_applied);
    }

    #[test]
    fn barrier_release_counts_as_release_instance() {
        let mut b = WorkloadBuilder::new("wd-bar", 4);
        let bar = b.alloc_barrier();
        for t in 0..4 {
            b.thread_mut(t).compute(100).barrier(bar);
        }
        let w = b.build();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::none(),
        );
        let (out, _) = m.run().expect("clean run");
        // One episode: the last arrival's internal flag set.
        assert_eq!(out.stats.release_sync_instances, 1);
    }

    #[test]
    fn removed_release_deadlocks_blocking_waiter() {
        let w = flag_pair();
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            NullObserver,
            1,
            InjectionPlan::remove_release_nth(0),
        );
        let err = m.run().expect_err("waiter must hang");
        match &err {
            SimError::Deadlock {
                cycle,
                stuck_threads,
            } => {
                assert!(*cycle > 0);
                assert_eq!(stuck_threads.len(), 1);
                let diag = &stuck_threads[0];
                assert_eq!(diag.thread.index(), 1);
                assert!(
                    matches!(diag.state, StuckState::BlockedOnFlag(_)),
                    "unexpected stuck state: {}",
                    diag.state
                );
                assert!(diag.op_idx < diag.ops_total);
            }
            other => panic!("expected deadlock, got {other}"),
        }
        assert_eq!(err.kind(), "deadlock");
    }

    #[test]
    fn removed_release_livelocks_spinning_waiter() {
        let w = flag_pair();
        let cfg = MachineConfig::paper_4core()
            .with_spin_waits(50)
            .with_watchdog(Watchdog::progress_window(200_000));
        let m = Machine::new(
            cfg,
            &w,
            NullObserver,
            1,
            InjectionPlan::remove_release_nth(0),
        );
        let err = m.run().expect_err("spinner must livelock");
        match &err {
            SimError::Livelock {
                cycle,
                last_progress_cycle,
                stuck_threads,
            } => {
                assert!(cycle > last_progress_cycle);
                assert!(cycle - last_progress_cycle > 200_000);
                let spinner = stuck_threads
                    .iter()
                    .find(|d| d.thread.index() == 1)
                    .expect("thread 1 diagnosed");
                assert!(
                    matches!(spinner.state, StuckState::SpinningOnFlag(_)),
                    "unexpected stuck state: {}",
                    spinner.state
                );
            }
            other => panic!("expected livelock, got {other}"),
        }
        assert_eq!(err.kind(), "livelock");
    }

    #[test]
    fn cycle_budget_trips_on_long_run() {
        let mut b = WorkloadBuilder::new("wd-budget", 2);
        let d = b.alloc_words(1);
        for t in 0..2 {
            b.thread_mut(t).compute(50_000).write(d.word(0));
        }
        let w = b.build();
        let cfg = MachineConfig::paper_4core().with_watchdog(Watchdog::cycle_budget(10_000));
        let m = Machine::new(cfg, &w, NullObserver, 1, InjectionPlan::none());
        let err = m.run().expect_err("budget must trip");
        match &err {
            SimError::CycleBudgetExceeded {
                cycle,
                budget,
                stuck_threads,
            } => {
                assert_eq!(*budget, 10_000);
                assert!(*cycle > 10_000);
                assert!(!stuck_threads.is_empty());
            }
            other => panic!("expected budget exceeded, got {other}"),
        }
        assert_eq!(err.kind(), "cycle-budget-exceeded");
    }

    #[test]
    fn watchdog_does_not_fire_on_healthy_runs() {
        let w = flag_pair();
        let cfg = MachineConfig::paper_4core().with_watchdog(Watchdog::new(50_000_000, 10_000_000));
        let m = Machine::new(cfg, &w, NullObserver, 1, InjectionPlan::none());
        assert!(m.run().is_ok());
    }

    #[test]
    fn spin_waits_complete_clean_runs() {
        let w = flag_pair();
        let blocking = {
            let m = Machine::new(
                MachineConfig::paper_4core(),
                &w,
                NullObserver,
                1,
                InjectionPlan::none(),
            );
            m.run().expect("blocking run").0
        };
        let spinning = {
            let cfg = MachineConfig::paper_4core().with_spin_waits(50);
            let m = Machine::new(cfg, &w, NullObserver, 1, InjectionPlan::none());
            m.run().expect("spin run").0
        };
        // Same data accesses either way; spinning only adds sync reads.
        assert_eq!(blocking.stats.data_reads, spinning.stats.data_reads);
        assert_eq!(blocking.stats.data_writes, spinning.stats.data_writes);
        assert!(spinning.stats.sync_reads >= blocking.stats.sync_reads);
    }

    #[test]
    fn failure_is_deterministic_for_a_seed() {
        let w = flag_pair();
        let run = || {
            let cfg = MachineConfig::paper_4core()
                .with_spin_waits(50)
                .with_watchdog(Watchdog::progress_window(100_000));
            Machine::new(
                cfg,
                &w,
                NullObserver,
                9,
                InjectionPlan::remove_release_nth(0),
            )
            .run()
            .expect_err("livelock")
        };
        assert_eq!(run(), run());
    }
}
