//! Property tests: randomized access sequences never violate the MESI
//! and inclusion invariants of the memory system.

use cord_fuzz::gen::{generate, GenConfig};
use cord_sim::config::{CoherenceKind, MachineConfig};
use cord_sim::memsys::{MemEvent, MemorySystem};
use cord_sim::observer::{AccessPath, CoreId, RemovalCause};
use cord_trace::op::Op;
use cord_trace::program::Workload;
use cord_trace::types::Addr;
use proptest::prelude::*;

/// Checks the global coherence invariants over every line either cache
/// level holds.
fn check_invariants(m: &MemorySystem, cores: usize) {
    use cord_sim::cache::Mesi;
    use std::collections::HashMap;
    let mut holders: HashMap<u64, Vec<(usize, Mesi)>> = HashMap::new();
    for c in 0..cores {
        let core = CoreId(c as u8);
        // Inclusion + state mirroring.
        for (line, l1state) in m.l1_of(core).lines() {
            let l2state = m
                .l2_of(core)
                .probe(line)
                .unwrap_or_else(|| panic!("inclusion violated: {line} in L1 not L2"));
            assert_eq!(l1state, l2state, "state mismatch for {line} on {core}");
        }
        for (line, state) in m.l2_of(core).lines() {
            holders.entry(line.0).or_default().push((c, state));
        }
    }
    // Single-writer: a Modified or Exclusive copy excludes all others.
    for (line, hs) in holders {
        let exclusive = hs
            .iter()
            .filter(|(_, s)| matches!(s, Mesi::Modified | Mesi::Exclusive))
            .count();
        if exclusive > 0 {
            assert_eq!(
                hs.len(),
                1,
                "line {line:#x}: M/E copy coexists with others: {hs:?}"
            );
        }
    }
}

/// Round-robin replay of a workload's data accesses straight into the
/// memory system (thread `t` pinned to core `t % cores`), checking the
/// coherence invariants after every access. Returns how many sibling
/// transfers, upgrade hits, and capacity evictions the run produced.
fn drive_workload(w: &Workload, m: &mut MemorySystem, cores: usize) -> (usize, usize, usize) {
    let mut cursors = vec![0usize; w.num_threads()];
    let mut now = 0u64;
    let (mut siblings, mut upgrades, mut capacity) = (0usize, 0usize, 0usize);
    loop {
        let mut advanced = false;
        for (t, cursor) in cursors.iter_mut().enumerate() {
            let ops = w.threads()[t].ops();
            // Skip to this thread's next data access.
            let access = loop {
                match ops.get(*cursor) {
                    Some(Op::Read(a)) => break Some((*a, false)),
                    Some(Op::Write(a)) => break Some((*a, true)),
                    Some(_) => *cursor += 1,
                    None => break None,
                }
            };
            let Some((addr, write)) = access else {
                continue;
            };
            *cursor += 1;
            advanced = true;
            let core = CoreId((t % cores) as u8);
            let res = m.access(core, addr, write, now);
            now = res.done + 3;
            match res.path {
                AccessPath::FillFromSibling(_) => siblings += 1,
                AccessPath::UpgradeHit => upgrades += 1,
                _ => {}
            }
            capacity += res
                .events
                .iter()
                .filter(|e| matches!(e, MemEvent::Removed(r) if r.cause == RemovalCause::Capacity))
                .count();
            check_invariants(m, cores);
        }
        if !advanced {
            break;
        }
    }
    (siblings, upgrades, capacity)
}

/// Short fuzzed workloads (the same generator the oracle fuzzes with)
/// replayed into the memory system keep it coherent at every step, and
/// across the batch the traffic actually exercises the interesting
/// paths: cache-to-cache transfers and Shared→Modified upgrades.
#[test]
fn fuzzed_workloads_preserve_coherence_and_cover_mesi_paths() {
    let cfg = MachineConfig::paper_4core();
    let (mut siblings, mut upgrades) = (0usize, 0usize);
    for gen_seed in 0..40u64 {
        let w = generate(&GenConfig::default().short(), gen_seed);
        let mut m = MemorySystem::new(cfg.clone());
        let (s, u, _) = drive_workload(&w, &mut m, cfg.cores);
        siblings += s;
        upgrades += u;
    }
    assert!(siblings > 0, "no cache-to-cache transfer exercised");
    assert!(upgrades > 0, "no Shared→Modified upgrade exercised");
}

/// The scaling axis: fuzzed workloads sized to the machine, replayed
/// at 8/16/32 cores on BOTH coherence backends with the invariants
/// asserted after every access. The directory's home-bank indirection
/// must change timing only — never protocol states — at any width.
#[test]
fn fuzzed_workloads_stay_coherent_at_scale_on_both_backends() {
    for cores in [8usize, 16, 32] {
        for kind in [CoherenceKind::SnoopingBus, CoherenceKind::Directory] {
            let cfg = MachineConfig::paper_4core()
                .with_cores(cores)
                .with_coherence(kind);
            let (mut siblings, mut upgrades) = (0usize, 0usize);
            // Fewer seeds at the wider (slower to check) machines.
            let seeds = (64 / cores).max(2) as u64;
            for gen_seed in 0..seeds {
                let w = generate(&GenConfig::default().short().wide(cores), gen_seed);
                let mut m = MemorySystem::new(cfg.clone());
                let (s, u, _) = drive_workload(&w, &mut m, cores);
                siblings += s;
                upgrades += u;
            }
            assert!(
                siblings > 0,
                "{kind:?} at {cores} cores: no cache-to-cache transfer"
            );
            assert!(
                upgrades > 0,
                "{kind:?} at {cores} cores: no Shared→Modified upgrade"
            );
        }
    }
}

/// Cross-backend equivalence at the protocol level: the same fixed
/// round-robin replay on snooping and directory machines must leave
/// every cache of every core in the identical MESI state, and take the
/// identical fill/upgrade paths — the backends may only disagree about
/// *when*, never about *what*. (Race-report equivalence on top of the
/// same replay lives in cord-bench's `backend_equivalence` test, where
/// the detector is in scope.)
#[test]
fn backends_agree_on_states_and_paths_at_scale() {
    use cord_sim::cache::Mesi;
    for cores in [8usize, 16, 32] {
        for gen_seed in 0..3u64 {
            let w = generate(&GenConfig::default().short().wide(cores), gen_seed);
            let base = MachineConfig::paper_4core().with_cores(cores);
            let mut snoop = MemorySystem::new(base.clone());
            let mut dir = MemorySystem::new(base.with_coherence(CoherenceKind::Directory));
            let s = drive_workload(&w, &mut snoop, cores);
            let d = drive_workload(&w, &mut dir, cores);
            assert_eq!(s, d, "path counts diverged at {cores} cores");
            for c in 0..cores {
                let core = CoreId(c as u8);
                let collect = |m: &MemorySystem| -> Vec<(u64, Mesi)> {
                    let mut v: Vec<(u64, Mesi)> = m
                        .l2_of(core)
                        .lines()
                        .map(|(line, st)| (line.0, st))
                        .collect();
                    v.sort_unstable_by_key(|(l, _)| *l);
                    v
                };
                assert_eq!(
                    collect(&snoop),
                    collect(&dir),
                    "L2 state diverged on core {c} at {cores} cores"
                );
            }
        }
    }
}

/// Eviction during an upgrade sequence: two cores share a line, the
/// would-be writer's caches are then flooded until capacity evictions
/// hit, and the write that follows must still upgrade cleanly —
/// leaving the writer the sole Modified holder with every invariant
/// intact throughout.
#[test]
fn eviction_during_upgrade_stays_coherent() {
    let cfg = MachineConfig::paper_4core();
    let mut m = MemorySystem::new(cfg.clone());
    let cores = cfg.cores;
    let target = Addr::new(0x40);
    let mut now = 0u64;

    // Both cores read the target line: Shared in two caches.
    now = m.access(CoreId(0), target, false, now).done + 1;
    now = m.access(CoreId(1), target, false, now).done + 1;
    check_invariants(&m, cores);

    // Flood core 0 with distinct lines until its L1 sheds lines by
    // capacity (the L2 keeps the target by inclusion or evicts it —
    // either way the invariants must hold at every step).
    let flood_lines = cfg.l1.num_lines() * 2;
    let mut capacity_evictions = 0usize;
    for i in 0..flood_lines {
        let addr = Addr::new(0x1_0000 + i * 64);
        let res = m.access(CoreId(0), addr, false, now);
        now = res.done + 1;
        capacity_evictions += res
            .events
            .iter()
            .filter(|e| matches!(e, MemEvent::Removed(r) if r.cause == RemovalCause::Capacity))
            .count();
        check_invariants(&m, cores);
    }
    assert!(
        capacity_evictions > 0,
        "flood produced no capacity evictions"
    );

    // Now write the (still-Shared-somewhere) target from core 0: a
    // permission upgrade or a refill-for-ownership, never a corrupt
    // state.
    let res = m.access(CoreId(0), target, true, now);
    check_invariants(&m, cores);
    let line = target.line();
    assert_eq!(
        m.l2_of(CoreId(0)).probe(line),
        Some(cord_sim::cache::Mesi::Modified),
        "writer must end Modified (path was {:?})",
        res.path
    );
    for c in 1..cores {
        assert!(
            !m.l2_of(CoreId(c as u8)).contains(line),
            "stale copy on core {c} after upgrade"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant check over the fuzzed-workload driver for arbitrary
    /// seeds (coverage assertions live in the deterministic batch test
    /// above; a single seed need not hit every path).
    #[test]
    fn fuzzed_workload_traffic_preserves_coherence(gen_seed in 0u64..1_000_000) {
        let cfg = MachineConfig::paper_4core();
        let w = generate(&GenConfig::default().short(), gen_seed);
        let mut m = MemorySystem::new(cfg.clone());
        drive_workload(&w, &mut m, cfg.cores);
    }

    /// Any interleaving of reads/writes from any cores leaves the
    /// hierarchy coherent, with monotone time and bounded occupancy.
    #[test]
    fn random_traffic_preserves_coherence(
        ops in proptest::collection::vec(
            (0u8..4, 0u64..128, proptest::bool::ANY),
            1..300,
        )
    ) {
        let cfg = MachineConfig::paper_4core();
        let mut m = MemorySystem::new(cfg.clone());
        let mut now = 0u64;
        for (core, word, write) in ops {
            let addr = Addr::new(word * 4);
            let res = m.access(CoreId(core), addr, write, now);
            prop_assert!(res.done > now, "time must advance");
            now += 7; // issue the next access a bit later
            check_invariants(&m, cfg.cores);
            for c in 0..cfg.cores {
                let core = CoreId(c as u8);
                prop_assert!(m.l1_of(core).occupancy() as u64 <= cfg.l1.num_lines());
                prop_assert!(m.l2_of(core).occupancy() as u64 <= cfg.l2.num_lines());
            }
        }
    }

    /// A write leaves the writer as the sole (Modified) holder.
    #[test]
    fn writes_end_modified_and_exclusive(
        warm in proptest::collection::vec((0u8..4, 0u64..32), 0..40),
        writer in 0u8..4,
        word in 0u64..32,
    ) {
        let mut m = MemorySystem::new(MachineConfig::paper_4core());
        let mut now = 0;
        for (core, w) in warm {
            now = m.access(CoreId(core), Addr::new(w * 4), false, now).done;
        }
        let addr = Addr::new(word * 4);
        m.access(CoreId(writer), addr, true, now + 10);
        let line = addr.line();
        prop_assert_eq!(
            m.l2_of(CoreId(writer)).probe(line),
            Some(cord_sim::cache::Mesi::Modified)
        );
        for c in 0..4u8 {
            if c != writer {
                prop_assert!(!m.l2_of(CoreId(c)).contains(line));
            }
        }
    }
}
