//! Property tests: randomized access sequences never violate the MESI
//! and inclusion invariants of the memory system.

use cord_sim::config::MachineConfig;
use cord_sim::memsys::MemorySystem;
use cord_sim::observer::CoreId;
use cord_trace::types::Addr;
use proptest::prelude::*;

/// Checks the global coherence invariants over every line either cache
/// level holds.
fn check_invariants(m: &MemorySystem, cores: usize) {
    use cord_sim::cache::Mesi;
    use std::collections::HashMap;
    let mut holders: HashMap<u64, Vec<(usize, Mesi)>> = HashMap::new();
    for c in 0..cores {
        let core = CoreId(c as u8);
        // Inclusion + state mirroring.
        for (line, l1state) in m.l1_of(core).lines() {
            let l2state = m
                .l2_of(core)
                .probe(line)
                .unwrap_or_else(|| panic!("inclusion violated: {line} in L1 not L2"));
            assert_eq!(l1state, l2state, "state mismatch for {line} on {core}");
        }
        for (line, state) in m.l2_of(core).lines() {
            holders.entry(line.0).or_default().push((c, state));
        }
    }
    // Single-writer: a Modified or Exclusive copy excludes all others.
    for (line, hs) in holders {
        let exclusive = hs
            .iter()
            .filter(|(_, s)| matches!(s, Mesi::Modified | Mesi::Exclusive))
            .count();
        if exclusive > 0 {
            assert_eq!(
                hs.len(),
                1,
                "line {line:#x}: M/E copy coexists with others: {hs:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of reads/writes from any cores leaves the
    /// hierarchy coherent, with monotone time and bounded occupancy.
    #[test]
    fn random_traffic_preserves_coherence(
        ops in proptest::collection::vec(
            (0u8..4, 0u64..128, proptest::bool::ANY),
            1..300,
        )
    ) {
        let cfg = MachineConfig::paper_4core();
        let mut m = MemorySystem::new(cfg.clone());
        let mut now = 0u64;
        for (core, word, write) in ops {
            let addr = Addr::new(word * 4);
            let res = m.access(CoreId(core), addr, write, now);
            prop_assert!(res.done > now, "time must advance");
            now += 7; // issue the next access a bit later
            check_invariants(&m, cfg.cores);
            for c in 0..cfg.cores {
                let core = CoreId(c as u8);
                prop_assert!(m.l1_of(core).occupancy() as u64 <= cfg.l1.num_lines());
                prop_assert!(m.l2_of(core).occupancy() as u64 <= cfg.l2.num_lines());
            }
        }
    }

    /// A write leaves the writer as the sole (Modified) holder.
    #[test]
    fn writes_end_modified_and_exclusive(
        warm in proptest::collection::vec((0u8..4, 0u64..32), 0..40),
        writer in 0u8..4,
        word in 0u64..32,
    ) {
        let mut m = MemorySystem::new(MachineConfig::paper_4core());
        let mut now = 0;
        for (core, w) in warm {
            now = m.access(CoreId(core), Addr::new(w * 4), false, now).done;
        }
        let addr = Addr::new(word * 4);
        m.access(CoreId(writer), addr, true, now + 10);
        let line = addr.line();
        prop_assert_eq!(
            m.l2_of(CoreId(writer)).probe(line),
            Some(cord_sim::cache::Mesi::Modified)
        );
        for c in 0..4u8 {
            if c != writer {
                prop_assert!(!m.l2_of(CoreId(c)).contains(line));
            }
        }
    }
}
