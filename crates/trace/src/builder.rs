//! Fluent construction of [`Workload`]s.

use crate::layout::AddressLayout;
use crate::op::{AtomicRmwKind, Op};
use crate::program::{ThreadProgram, Workload};
use crate::types::{Addr, AtomicId, BarrierId, FlagId, LockId, WordRange, LINE_BYTES, WORD_BYTES};

/// Builder for a [`Workload`]: allocates synchronization objects and data
/// ranges, then lets each thread's program be emitted through
/// [`ThreadBuilder`].
///
/// # Examples
///
/// ```
/// use cord_trace::builder::WorkloadBuilder;
///
/// let mut b = WorkloadBuilder::new("pipeline", 2);
/// let flag = b.alloc_flag();
/// let buf = b.alloc_line_aligned(16);
/// b.thread_mut(0).write(buf.word(0)).flag_set(flag);
/// b.thread_mut(1).flag_wait(flag).read(buf.word(0));
/// let w = b.build();
/// w.validate().unwrap();
/// ```
#[derive(Debug)]
pub struct WorkloadBuilder {
    name: String,
    threads: Vec<Vec<Op>>,
    locks: u32,
    flags: u32,
    barriers: u32,
    atomics: u32,
    data_cursor: u64,
}

impl WorkloadBuilder {
    /// Starts a workload named `name` with `num_threads` empty threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(name: impl Into<String>, num_threads: usize) -> Self {
        assert!(num_threads > 0, "a workload needs at least one thread");
        WorkloadBuilder {
            name: name.into(),
            threads: vec![Vec::new(); num_threads],
            locks: 0,
            flags: 0,
            barriers: 0,
            atomics: 0,
            data_cursor: 0,
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Allocates a new mutex.
    pub fn alloc_lock(&mut self) -> LockId {
        let id = LockId(self.locks);
        self.locks += 1;
        id
    }

    /// Allocates `n` new mutexes (e.g. one per hash bucket).
    pub fn alloc_locks(&mut self, n: u32) -> Vec<LockId> {
        (0..n).map(|_| self.alloc_lock()).collect()
    }

    /// Allocates a new flag (condition variable).
    pub fn alloc_flag(&mut self) -> FlagId {
        let id = FlagId(self.flags);
        self.flags += 1;
        id
    }

    /// Allocates `n` new flags.
    pub fn alloc_flags(&mut self, n: u32) -> Vec<FlagId> {
        (0..n).map(|_| self.alloc_flag()).collect()
    }

    /// Allocates a new barrier.
    pub fn alloc_barrier(&mut self) -> BarrierId {
        let id = BarrierId(self.barriers);
        self.barriers += 1;
        id
    }

    /// Allocates a new atomic RMW word.
    pub fn alloc_atomic(&mut self) -> AtomicId {
        let id = AtomicId(self.atomics);
        self.atomics += 1;
        id
    }

    /// Allocates `n` new atomic words.
    pub fn alloc_atomics(&mut self, n: u32) -> Vec<AtomicId> {
        (0..n).map(|_| self.alloc_atomic()).collect()
    }

    /// Allocates `words` contiguous data words.
    pub fn alloc_words(&mut self, words: u64) -> WordRange {
        let base = Addr::new(self.data_cursor * WORD_BYTES);
        self.data_cursor += words;
        WordRange::new(base, words)
    }

    /// Allocates `words` data words starting on a fresh cache line, so
    /// the range shares no line with earlier allocations (workloads use
    /// this to control — or deliberately create — false sharing).
    pub fn alloc_line_aligned(&mut self, words: u64) -> WordRange {
        let words_per_line = LINE_BYTES / WORD_BYTES;
        self.data_cursor = self.data_cursor.div_ceil(words_per_line) * words_per_line;
        self.alloc_words(words)
    }

    /// Access to thread `t`'s program builder.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread_mut(&mut self, t: usize) -> ThreadBuilder<'_> {
        assert!(t < self.threads.len(), "thread {t} out of range");
        ThreadBuilder {
            ops: &mut self.threads[t],
        }
    }

    /// Finalizes the workload.
    pub fn build(self) -> Workload {
        let layout = AddressLayout::new(self.locks, self.flags, self.barriers, self.data_cursor)
            .with_atomics(self.atomics);
        Workload::new(
            self.name,
            self.threads
                .into_iter()
                .map(ThreadProgram::from_ops)
                .collect(),
            layout,
        )
    }
}

/// Emits operations into one thread's program; methods chain.
#[derive(Debug)]
pub struct ThreadBuilder<'a> {
    ops: &'a mut Vec<Op>,
}

impl ThreadBuilder<'_> {
    /// Emits a data read of `addr`.
    pub fn read(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Read(addr));
        self
    }

    /// Emits a data write of `addr`.
    pub fn write(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Write(addr));
        self
    }

    /// Emits a read-modify-write of `addr` (a read followed by a write).
    pub fn update(&mut self, addr: Addr) -> &mut Self {
        self.read(addr).write(addr)
    }

    /// Emits reads of `n` consecutive words starting at `base`.
    pub fn read_span(&mut self, base: Addr, n: u64) -> &mut Self {
        for i in 0..n {
            self.read(base.offset_words(i));
        }
        self
    }

    /// Emits writes of `n` consecutive words starting at `base`.
    pub fn write_span(&mut self, base: Addr, n: u64) -> &mut Self {
        for i in 0..n {
            self.write(base.offset_words(i));
        }
        self
    }

    /// Emits a lock acquisition.
    pub fn lock(&mut self, l: LockId) -> &mut Self {
        self.ops.push(Op::Lock(l));
        self
    }

    /// Emits a lock release.
    pub fn unlock(&mut self, l: LockId) -> &mut Self {
        self.ops.push(Op::Unlock(l));
        self
    }

    /// Emits a flag set.
    pub fn flag_set(&mut self, g: FlagId) -> &mut Self {
        self.ops.push(Op::FlagSet(g));
        self
    }

    /// Emits a flag wait.
    pub fn flag_wait(&mut self, g: FlagId) -> &mut Self {
        self.ops.push(Op::FlagWait(g));
        self
    }

    /// Emits a flag reset.
    pub fn flag_reset(&mut self, g: FlagId) -> &mut Self {
        self.ops.push(Op::FlagReset(g));
        self
    }

    /// Emits a barrier arrival.
    pub fn barrier(&mut self, b: BarrierId) -> &mut Self {
        self.ops.push(Op::Barrier(b));
        self
    }

    /// Emits a compare-and-swap retry loop on atomic `a`.
    pub fn cas_loop(&mut self, a: AtomicId) -> &mut Self {
        self.ops.push(Op::Atomic(a, AtomicRmwKind::CasLoop));
        self
    }

    /// Emits an unconditional fetch-and-add on atomic `a`.
    pub fn fetch_add(&mut self, a: AtomicId) -> &mut Self {
        self.ops.push(Op::Atomic(a, AtomicRmwKind::FetchAdd));
        self
    }

    /// Emits an unconditional exchange on atomic `a`.
    pub fn exchange(&mut self, a: AtomicId) -> &mut Self {
        self.ops.push(Op::Atomic(a, AtomicRmwKind::Exchange));
        self
    }

    /// Emits `cycles` of local computation (skipped when 0).
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        if cycles > 0 {
            self.ops.push(Op::Compute(cycles));
        }
        self
    }

    /// Emits a whole critical section: `lock(l)`, the body, `unlock(l)`.
    pub fn critical_section(&mut self, l: LockId, body: impl FnOnce(&mut Self)) -> &mut Self {
        self.lock(l);
        body(self);
        self.unlock(l)
    }

    /// Number of ops emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocators_hand_out_distinct_ids() {
        let mut b = WorkloadBuilder::new("t", 1);
        assert_eq!(b.alloc_lock(), LockId(0));
        assert_eq!(b.alloc_lock(), LockId(1));
        assert_eq!(b.alloc_flag(), FlagId(0));
        assert_eq!(b.alloc_barrier(), BarrierId(0));
        let ls = b.alloc_locks(3);
        assert_eq!(ls, vec![LockId(2), LockId(3), LockId(4)]);
        assert_eq!(b.alloc_atomic(), AtomicId(0));
        assert_eq!(b.alloc_atomics(2), vec![AtomicId(1), AtomicId(2)]);
    }

    #[test]
    fn atomic_ops_chain_and_build() {
        let mut b = WorkloadBuilder::new("t", 2);
        let a = b.alloc_atomic();
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0)).cas_loop(a);
        b.thread_mut(1).fetch_add(a).exchange(a);
        let w = b.build();
        w.validate().unwrap();
        assert_eq!(w.layout().user_atomics(), 1);
        assert_eq!(
            w.thread(crate::types::ThreadId(1)).ops(),
            &[
                Op::Atomic(a, AtomicRmwKind::FetchAdd),
                Op::Atomic(a, AtomicRmwKind::Exchange),
            ]
        );
    }

    #[test]
    fn data_allocations_do_not_overlap() {
        let mut b = WorkloadBuilder::new("t", 1);
        let a = b.alloc_words(5);
        let c = b.alloc_words(3);
        assert_eq!(a.end(), c.base());
    }

    #[test]
    fn line_aligned_allocation_starts_fresh_line() {
        let mut b = WorkloadBuilder::new("t", 1);
        let _ = b.alloc_words(3);
        let r = b.alloc_line_aligned(4);
        assert_eq!(r.base().byte() % LINE_BYTES, 0);
        assert_ne!(r.base().byte(), 0); // skipped past the first alloc
    }

    #[test]
    fn thread_builder_chains_and_builds() {
        let mut b = WorkloadBuilder::new("t", 2);
        let l = b.alloc_lock();
        let d = b.alloc_words(2);
        b.thread_mut(0)
            .critical_section(l, |tb| {
                tb.update(d.word(0));
            })
            .compute(10);
        b.thread_mut(1).lock(l).read(d.word(0)).unlock(l);
        let w = b.build();
        w.validate().unwrap();
        assert_eq!(w.thread(crate::types::ThreadId(0)).len(), 5);
        assert_eq!(w.total_ops(), 8);
    }

    #[test]
    fn span_helpers_emit_consecutive_words() {
        let mut b = WorkloadBuilder::new("t", 1);
        let d = b.alloc_words(4);
        b.thread_mut(0)
            .read_span(d.base(), 2)
            .write_span(d.word(2), 2);
        let w = b.build();
        let ops = w.thread(crate::types::ThreadId(0)).ops().to_vec();
        assert_eq!(
            ops,
            vec![
                Op::Read(d.word(0)),
                Op::Read(d.word(1)),
                Op::Write(d.word(2)),
                Op::Write(d.word(3)),
            ]
        );
    }

    #[test]
    fn compute_zero_is_elided() {
        let mut b = WorkloadBuilder::new("t", 1);
        b.thread_mut(0).compute(0);
        assert!(b.thread_mut(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = WorkloadBuilder::new("t", 0);
    }
}
