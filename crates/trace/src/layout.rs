//! Address-space layout: where data and synchronization objects live.
//!
//! Synchronization variables are ordinary memory locations in the paper —
//! what distinguishes them is that the (modified) synchronization library
//! accesses them with labeled instructions. The layout gives every lock
//! and flag its own cache line in a dedicated region above the data heap
//! so workload generators can lay out data freely below it, and so a
//! barrier's constituent objects (its internal mutex, its two
//! sense-reversing flags, and its arrival counter word) resolve to stable
//! addresses.

use crate::types::{
    Addr, AtomicId, BarrierId, FlagId, LineAddr, LockId, LINE_BYTES, WORDS_PER_LINE,
};

/// First byte of the synchronization-object region. Data allocations must
/// stay below this.
pub const SYNC_BASE: u64 = 0x1000_0000;

/// First *line* of the synchronization-object region
/// ([`SYNC_BASE`]` / LINE_BYTES`).
pub const SYNC_BASE_LINE: u64 = SYNC_BASE / LINE_BYTES;

/// Maps a line address to its dense line index.
///
/// The workload address space has two live bands — the data heap
/// growing up from zero and the sync-object region at [`SYNC_BASE`] —
/// so raw line numbers are unusable as vector indices (the sync band
/// starts at line 4M). Interleaving the two bands closes the gap with
/// pure arithmetic: data line `L` maps to `2L`, the `o`-th sync line to
/// `2o + 1`. The mapping is total, injective, and layout-independent,
/// which lets shadow state index flat vectors instead of hashing per
/// access while keeping detector constructors free of layout plumbing.
#[inline]
pub fn dense_line_index(line: LineAddr) -> usize {
    if line.0 >= SYNC_BASE_LINE {
        (((line.0 - SYNC_BASE_LINE) << 1) | 1) as usize
    } else {
        (line.0 << 1) as usize
    }
}

/// Maps a word address to its dense word index:
/// `dense_line_index(line) * 16 + word_in_line`.
#[inline]
pub fn dense_word_index(addr: Addr) -> usize {
    dense_line_index(addr.line()) * WORDS_PER_LINE as usize + addr.word_in_line()
}

/// Up-front capacity bounds for [`dense_line_index`] /
/// [`dense_word_index`] under a given [`AddressLayout`] — the footprint
/// is known before a run starts, so shadow structures can pre-size
/// their vectors instead of growing on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseLineMap {
    line_capacity: usize,
}

impl DenseLineMap {
    /// Capacity bounds for `layout`. Assumes the data heap is laid out
    /// from address zero (as the workload builder does); a generator
    /// using higher data addresses only loses the pre-sizing, not
    /// correctness — consumers grow on demand past the bound.
    pub fn new(layout: &AddressLayout) -> Self {
        let data_lines = layout.data_words().div_ceil(WORDS_PER_LINE);
        let sync_lines = u64::from(layout.total_locks())
            + u64::from(layout.total_flags())
            + u64::from(layout.barriers())
            + u64::from(layout.user_atomics());
        let max_index = (2 * data_lines).max(2 * sync_lines);
        DenseLineMap {
            line_capacity: max_index as usize,
        }
    }

    /// One past the largest dense *line* index the layout can produce.
    pub fn line_capacity(&self) -> usize {
        self.line_capacity
    }

    /// One past the largest dense *word* index the layout can produce.
    pub fn word_capacity(&self) -> usize {
        self.line_capacity * WORDS_PER_LINE as usize
    }
}

/// Maps synchronization object IDs to memory addresses.
///
/// Lock and flag IDs are split into *user* IDs (allocated by the workload
/// builder) followed by *barrier-internal* IDs: barrier `b` owns lock
/// `user_locks + b` and flags `user_flags + 2b` / `user_flags + 2b + 1`
/// (the two sense-reversing generations).
///
/// # Examples
///
/// ```
/// use cord_trace::layout::AddressLayout;
/// use cord_trace::types::{BarrierId, LockId};
///
/// let l = AddressLayout::new(2, 1, 1, 4096);
/// // Barrier 0's internal mutex is lock id 2 (after the 2 user locks).
/// assert_eq!(l.barrier_lock(BarrierId(0)), LockId(2));
/// // Every sync object gets its own cache line.
/// assert_ne!(
///     l.lock_addr(LockId(0)).line(),
///     l.lock_addr(LockId(1)).line()
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressLayout {
    user_locks: u32,
    user_flags: u32,
    barriers: u32,
    atomics: u32,
    data_words: u64,
}

impl AddressLayout {
    /// Creates a layout for the given object counts and data-heap size
    /// (in words).
    pub fn new(user_locks: u32, user_flags: u32, barriers: u32, data_words: u64) -> Self {
        AddressLayout {
            user_locks,
            user_flags,
            barriers,
            atomics: 0,
            data_words,
        }
    }

    /// The same layout with `atomics` atomic RMW words (each on its own
    /// line, after the barrier counters so pre-atomic layouts keep their
    /// addresses byte for byte).
    #[must_use]
    pub fn with_atomics(mut self, atomics: u32) -> Self {
        self.atomics = atomics;
        self
    }

    /// Number of user-allocated atomic words.
    pub fn user_atomics(&self) -> u32 {
        self.atomics
    }

    /// Number of user-allocated locks.
    pub fn user_locks(&self) -> u32 {
        self.user_locks
    }

    /// Number of user-allocated flags.
    pub fn user_flags(&self) -> u32 {
        self.user_flags
    }

    /// Number of barriers.
    pub fn barriers(&self) -> u32 {
        self.barriers
    }

    /// Size of the data heap in words.
    pub fn data_words(&self) -> u64 {
        self.data_words
    }

    /// Total locks including one internal lock per barrier.
    pub fn total_locks(&self) -> u32 {
        self.user_locks + self.barriers
    }

    /// Total flags including two internal flags per barrier.
    pub fn total_flags(&self) -> u32 {
        self.user_flags + 2 * self.barriers
    }

    /// Address of a lock word (one line per lock).
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range (≥ [`AddressLayout::total_locks`]).
    pub fn lock_addr(&self, lock: LockId) -> Addr {
        assert!(
            lock.0 < self.total_locks(),
            "lock id {} out of range",
            lock.0
        );
        Addr::new(SYNC_BASE + u64::from(lock.0) * LINE_BYTES)
    }

    /// Address of a flag word (one line per flag, after all locks).
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range (≥ [`AddressLayout::total_flags`]).
    pub fn flag_addr(&self, flag: FlagId) -> Addr {
        assert!(
            flag.0 < self.total_flags(),
            "flag id {} out of range",
            flag.0
        );
        let base = SYNC_BASE + u64::from(self.total_locks()) * LINE_BYTES;
        Addr::new(base + u64::from(flag.0) * LINE_BYTES)
    }

    /// The internal mutex protecting barrier `b`'s arrival counter.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn barrier_lock(&self, b: BarrierId) -> LockId {
        assert!(b.0 < self.barriers, "barrier id {} out of range", b.0);
        LockId(self.user_locks + b.0)
    }

    /// The two sense-reversing release flags of barrier `b`; episode `e`
    /// uses flag `e % 2`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn barrier_flags(&self, b: BarrierId) -> (FlagId, FlagId) {
        assert!(b.0 < self.barriers, "barrier id {} out of range", b.0);
        (
            FlagId(self.user_flags + 2 * b.0),
            FlagId(self.user_flags + 2 * b.0 + 1),
        )
    }

    /// Address of barrier `b`'s arrival-counter word. The counter is a
    /// *data* word protected by [`AddressLayout::barrier_lock`], exactly
    /// as in the paper's barrier implementation — removing the internal
    /// lock exposes real data races on this counter.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn barrier_counter_addr(&self, b: BarrierId) -> Addr {
        assert!(b.0 < self.barriers, "barrier id {} out of range", b.0);
        let base = SYNC_BASE
            + (u64::from(self.total_locks()) + u64::from(self.total_flags())) * LINE_BYTES;
        Addr::new(base + u64::from(b.0) * LINE_BYTES)
    }

    /// Address of atomic word `a` (one line per atomic, after the
    /// barrier counters).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range (≥ [`AddressLayout::user_atomics`]).
    pub fn atomic_addr(&self, a: AtomicId) -> Addr {
        assert!(a.0 < self.atomics, "atomic id {} out of range", a.0);
        let base = SYNC_BASE
            + (u64::from(self.total_locks())
                + u64::from(self.total_flags())
                + u64::from(self.barriers))
                * LINE_BYTES;
        Addr::new(base + u64::from(a.0) * LINE_BYTES)
    }

    /// `true` if `addr` belongs to the synchronization-object region
    /// (including barrier counters).
    pub fn is_sync_region(&self, addr: Addr) -> bool {
        addr.byte() >= SYNC_BASE
    }

    /// One byte past the last address the layout uses (for sizing
    /// simulated memory).
    pub fn address_space_end(&self) -> u64 {
        SYNC_BASE
            + (u64::from(self.total_locks())
                + u64::from(self.total_flags())
                + u64::from(self.barriers)
                + u64::from(self.atomics))
                * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_counts_include_barrier_internals() {
        let l = AddressLayout::new(3, 2, 2, 1024);
        assert_eq!(l.total_locks(), 5);
        assert_eq!(l.total_flags(), 6);
    }

    #[test]
    fn each_object_has_its_own_line() {
        let l = AddressLayout::new(2, 2, 1, 0);
        let mut lines = std::collections::HashSet::new();
        for i in 0..l.total_locks() {
            assert!(lines.insert(l.lock_addr(LockId(i)).line()));
        }
        for i in 0..l.total_flags() {
            assert!(lines.insert(l.flag_addr(FlagId(i)).line()));
        }
        assert!(lines.insert(l.barrier_counter_addr(BarrierId(0)).line()));
    }

    #[test]
    fn barrier_internal_ids_follow_user_ids() {
        let l = AddressLayout::new(4, 3, 2, 0);
        assert_eq!(l.barrier_lock(BarrierId(0)), LockId(4));
        assert_eq!(l.barrier_lock(BarrierId(1)), LockId(5));
        assert_eq!(l.barrier_flags(BarrierId(1)), (FlagId(5), FlagId(6)));
    }

    #[test]
    fn sync_region_classification() {
        let l = AddressLayout::new(1, 0, 0, 64);
        assert!(!l.is_sync_region(Addr::new(0x100)));
        assert!(l.is_sync_region(l.lock_addr(LockId(0))));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lock_panics() {
        AddressLayout::new(1, 0, 0, 0).lock_addr(LockId(1));
    }

    #[test]
    fn dense_line_index_interleaves_bands() {
        // Data lines take even indices, sync lines odd ones.
        assert_eq!(dense_line_index(LineAddr(0)), 0);
        assert_eq!(dense_line_index(LineAddr(1)), 2);
        assert_eq!(dense_line_index(LineAddr(SYNC_BASE_LINE)), 1);
        assert_eq!(dense_line_index(LineAddr(SYNC_BASE_LINE + 2)), 5);
    }

    #[test]
    fn dense_line_index_is_injective_across_bands() {
        let mut seen = std::collections::HashSet::new();
        for l in 0..1000 {
            assert!(seen.insert(dense_line_index(LineAddr(l))));
            assert!(seen.insert(dense_line_index(LineAddr(SYNC_BASE_LINE + l))));
        }
    }

    #[test]
    fn dense_word_index_tracks_word_in_line() {
        let a = Addr::new(0x44);
        assert_eq!(
            dense_word_index(a),
            dense_line_index(a.line()) * 16 + a.word_in_line()
        );
        let s = Addr::new(SYNC_BASE + 8);
        assert_eq!(dense_word_index(s), 16 + 2);
    }

    #[test]
    fn dense_map_capacity_covers_layout() {
        let l = AddressLayout::new(2, 2, 2, 1024);
        let m = DenseLineMap::new(&l);
        // Largest sync object line: 2 + 2 + (2 locks + 4 flags) → 10
        // sync lines; largest data line: 1024/16 = 64 lines.
        for i in 0..l.total_locks() {
            assert!(dense_line_index(l.lock_addr(LockId(i)).line()) < m.line_capacity());
        }
        for i in 0..l.total_flags() {
            assert!(dense_line_index(l.flag_addr(FlagId(i)).line()) < m.line_capacity());
        }
        assert!(dense_line_index(LineAddr(63)) < m.line_capacity());
        assert_eq!(m.word_capacity(), m.line_capacity() * 16);
    }

    #[test]
    fn atomics_band_follows_barrier_counters() {
        let l = AddressLayout::new(2, 1, 1, 256).with_atomics(3);
        assert_eq!(l.user_atomics(), 3);
        // The first atomic sits one line past the last barrier counter,
        // so layouts without atomics are byte-identical to before.
        let base = AddressLayout::new(2, 1, 1, 256);
        assert_eq!(l.lock_addr(LockId(0)), base.lock_addr(LockId(0)));
        assert_eq!(
            l.barrier_counter_addr(BarrierId(0)),
            base.barrier_counter_addr(BarrierId(0))
        );
        assert_eq!(l.atomic_addr(AtomicId(0)).byte(), base.address_space_end());
        assert!(l.is_sync_region(l.atomic_addr(AtomicId(2))));
        assert!(l.atomic_addr(AtomicId(2)).byte() < l.address_space_end());
        let mut lines = std::collections::HashSet::new();
        for i in 0..3 {
            assert!(lines.insert(l.atomic_addr(AtomicId(i)).line()));
        }
        let m = DenseLineMap::new(&l);
        for i in 0..3 {
            assert!(dense_line_index(l.atomic_addr(AtomicId(i)).line()) < m.line_capacity());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_atomic_panics() {
        AddressLayout::new(0, 0, 0, 0)
            .with_atomics(1)
            .atomic_addr(AtomicId(1));
    }

    #[test]
    fn address_space_end_covers_everything() {
        let l = AddressLayout::new(2, 2, 2, 0);
        let end = l.address_space_end();
        assert!(l.barrier_counter_addr(BarrierId(1)).byte() < end);
        assert!(l.flag_addr(FlagId(5)).byte() < end);
    }
}
