//! Thread-program model for the CORD reproduction.
//!
//! The paper runs Splash-2 binaries on an execution-driven simulator with
//! modified synchronization libraries that *label* synchronization
//! accesses (§2.7.3). This crate is the equivalent interface layer: a
//! workload is a set of per-thread programs over a small operation
//! vocabulary — data reads/writes, synchronization primitives
//! (locks, flags, barriers), and compute delays — and the simulator in
//! `cord-sim` executes those programs, expanding each synchronization
//! primitive into the labeled memory accesses the hardware would see.
//!
//! Key types:
//!
//! * [`Op`] — one dynamic operation of a thread.
//! * [`ThreadProgram`] — a thread's operation stream.
//! * [`Workload`] — all threads plus the shared [`layout::AddressLayout`]
//!   that maps synchronization objects to memory addresses.
//! * [`builder::WorkloadBuilder`] — the API workload generators use.
//!
//! # Example
//!
//! ```
//! use cord_trace::builder::WorkloadBuilder;
//!
//! let mut b = WorkloadBuilder::new("demo", 2);
//! let lock = b.alloc_lock();
//! let shared = b.alloc_words(1);
//! for t in 0..2 {
//!     b.thread_mut(t)
//!         .lock(lock)
//!         .read(shared.word(0))
//!         .write(shared.word(0))
//!         .unlock(lock)
//!         .compute(100);
//! }
//! let w = b.build();
//! assert_eq!(w.num_threads(), 2);
//! w.validate().expect("well-formed");
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod layout;
pub mod op;
pub mod program;
pub mod textfmt;
pub mod types;

pub use builder::WorkloadBuilder;
pub use op::Op;
pub use program::{ThreadProgram, Workload, WorkloadError};
pub use types::{Addr, BarrierId, FlagId, LockId, ThreadId, WordRange, LINE_BYTES, WORD_BYTES};
