//! The operation vocabulary of thread programs.

use crate::types::{Addr, AtomicId, BarrierId, FlagId, LockId};
use std::fmt;

/// One dynamic operation in a thread's program.
///
/// Data accesses name a word address directly. Synchronization primitives
/// name an object ID; the simulator resolves the ID to an address through
/// the workload's [`AddressLayout`](crate::layout::AddressLayout) and
/// expands the primitive into labeled synchronization loads/stores
/// (acquire spins, release stores, barrier arrivals) exactly as the
/// paper's modified synchronization libraries would emit them.
///
/// `Compute(n)` models `n` cycles of purely local work between memory
/// operations; it also advances the instruction counter used by the order
/// log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Data load of one word.
    Read(Addr),
    /// Data store of one word.
    Write(Addr),
    /// Acquire a mutex (spin of sync reads, then a sync write).
    Lock(LockId),
    /// Release a mutex (one sync write).
    Unlock(LockId),
    /// Set a flag / condition (one sync write).
    FlagSet(FlagId),
    /// Wait until a flag is set (spin of sync reads).
    FlagWait(FlagId),
    /// Reset a flag to unset (one sync write) so it can be reused.
    FlagReset(FlagId),
    /// Arrive at and wait for a sense-reversing barrier. Expanded by the
    /// simulator into lock/count/flag sub-primitives (§3.4: barrier
    /// synchronization "uses a combination of mutex and flag operations in
    /// its implementation").
    Barrier(BarrierId),
    /// A read-modify-write on an atomic word (resolved to a sync-region
    /// address through the layout). Expanded by the simulator into an
    /// acquire-flavored sync read of the word followed by a
    /// release-flavored sync write that commits the new value; a CAS loop
    /// additionally re-reads on commit failure (contention-driven
    /// retries).
    Atomic(AtomicId, AtomicRmwKind),
    /// `n` cycles (and `n` instructions) of local computation.
    Compute(u32),
}

/// The read-modify-write flavors of [`Op::Atomic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicRmwKind {
    /// A compare-and-swap retry loop: sync read (observe), then a commit
    /// sync write that succeeds only if the word is unchanged — on
    /// failure the loop re-reads and retries. Success has release
    /// semantics, the observing read acquire semantics.
    CasLoop,
    /// An unconditional fetch-and-add: one sync read, one committing
    /// sync write. Never fails, never retries.
    FetchAdd,
    /// An unconditional exchange (swap): one sync read, one committing
    /// sync write.
    Exchange,
}

impl Op {
    /// `true` for the two data-access variants.
    #[inline]
    pub fn is_data_access(&self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(_))
    }

    /// `true` for synchronization primitives (everything except data
    /// accesses and compute).
    #[inline]
    pub fn is_sync(&self) -> bool {
        !self.is_data_access() && !matches!(self, Op::Compute(_))
    }

    /// `true` for primitives the fault injector may remove: lock
    /// acquisitions, flag waits (§3.4), and CAS loops (whose
    /// acquire-side failure re-read is the lock-free analogue of a
    /// removed acquire). Unlocks are removed *with* their lock, never
    /// independently; flag sets are never removed, and the committing
    /// writes of unconditional RMWs (`FetchAdd`, `Exchange`) are never
    /// removed — dropping a committed store is data corruption, not a
    /// missing happens-before edge.
    #[inline]
    pub fn is_removable_sync(&self) -> bool {
        matches!(
            self,
            Op::Lock(_) | Op::FlagWait(_) | Op::Atomic(_, AtomicRmwKind::CasLoop)
        )
    }

    /// Number of instructions this op retires (for the order log's
    /// instruction counts). Every op is one instruction except `Compute`,
    /// which retires one instruction per cycle of work.
    #[inline]
    pub fn instructions(&self) -> u64 {
        match self {
            Op::Compute(n) => u64::from(*n),
            _ => 1,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(a) => write!(f, "RD {a}"),
            Op::Write(a) => write!(f, "WR {a}"),
            Op::Lock(l) => write!(f, "LOCK #{}", l.0),
            Op::Unlock(l) => write!(f, "UNLOCK #{}", l.0),
            Op::FlagSet(g) => write!(f, "SET #{}", g.0),
            Op::FlagWait(g) => write!(f, "WAIT #{}", g.0),
            Op::FlagReset(g) => write!(f, "RESET #{}", g.0),
            Op::Barrier(b) => write!(f, "BARRIER #{}", b.0),
            Op::Atomic(a, AtomicRmwKind::CasLoop) => write!(f, "CAS #{}", a.0),
            Op::Atomic(a, AtomicRmwKind::FetchAdd) => write!(f, "FADD #{}", a.0),
            Op::Atomic(a, AtomicRmwKind::Exchange) => write!(f, "XCHG #{}", a.0),
            Op::Compute(n) => write!(f, "COMPUTE {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Op::Read(Addr::new(0)).is_data_access());
        assert!(Op::Write(Addr::new(4)).is_data_access());
        assert!(!Op::Lock(LockId(0)).is_data_access());
        assert!(Op::Lock(LockId(0)).is_sync());
        assert!(Op::Barrier(BarrierId(0)).is_sync());
        assert!(Op::Atomic(AtomicId(0), AtomicRmwKind::CasLoop).is_sync());
        assert!(Op::Atomic(AtomicId(0), AtomicRmwKind::FetchAdd).is_sync());
        assert!(!Op::Atomic(AtomicId(0), AtomicRmwKind::Exchange).is_data_access());
        assert!(!Op::Compute(5).is_sync());
        assert!(!Op::Compute(5).is_data_access());
    }

    #[test]
    fn removable_set_matches_paper() {
        assert!(Op::Lock(LockId(1)).is_removable_sync());
        assert!(Op::FlagWait(FlagId(1)).is_removable_sync());
        assert!(!Op::Unlock(LockId(1)).is_removable_sync());
        assert!(!Op::FlagSet(FlagId(1)).is_removable_sync());
        assert!(!Op::Barrier(BarrierId(0)).is_removable_sync());
        assert!(!Op::Read(Addr::new(0)).is_removable_sync());
    }

    #[test]
    fn removable_set_matches_paper_for_atomics() {
        // The CAS failure re-read is an acquire the injector may drop;
        // the committing writes of unconditional RMWs are stores whose
        // removal would corrupt data, not weaken ordering, so they stay.
        assert!(Op::Atomic(AtomicId(0), AtomicRmwKind::CasLoop).is_removable_sync());
        assert!(!Op::Atomic(AtomicId(0), AtomicRmwKind::FetchAdd).is_removable_sync());
        assert!(!Op::Atomic(AtomicId(0), AtomicRmwKind::Exchange).is_removable_sync());
    }

    #[test]
    fn instruction_counts() {
        assert_eq!(Op::Read(Addr::new(0)).instructions(), 1);
        assert_eq!(
            Op::Atomic(AtomicId(0), AtomicRmwKind::CasLoop).instructions(),
            1
        );
        assert_eq!(Op::Compute(250).instructions(), 250);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Op::Read(Addr::new(0x40))), "RD 0x40");
        assert_eq!(format!("{}", Op::Lock(LockId(2))), "LOCK #2");
        assert_eq!(
            format!("{}", Op::Atomic(AtomicId(1), AtomicRmwKind::CasLoop)),
            "CAS #1"
        );
        assert_eq!(
            format!("{}", Op::Atomic(AtomicId(0), AtomicRmwKind::FetchAdd)),
            "FADD #0"
        );
        assert_eq!(
            format!("{}", Op::Atomic(AtomicId(2), AtomicRmwKind::Exchange)),
            "XCHG #2"
        );
        assert_eq!(format!("{}", Op::Compute(9)), "COMPUTE 9");
    }
}
