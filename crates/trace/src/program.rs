//! Thread programs, workloads, and structural validation.

use crate::layout::AddressLayout;
use crate::op::Op;
use crate::types::{Addr, BarrierId, ThreadId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One thread's operation stream.
///
/// Programs are immutable once built; use
/// [`WorkloadBuilder`](crate::builder::WorkloadBuilder) to create them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadProgram {
    ops: Vec<Op>,
}

impl ThreadProgram {
    /// Creates a program from an explicit op list.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        ThreadProgram { ops }
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.ops.iter()
    }

    /// Total instructions the program retires (compute counts per cycle).
    pub fn instruction_count(&self) -> u64 {
        self.ops.iter().map(Op::instructions).sum()
    }

    /// The sequence of barrier IDs this program passes, in order. Used by
    /// validation: all threads must agree on this sequence or the
    /// workload deadlocks.
    pub fn barrier_sequence(&self) -> Vec<BarrierId> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Barrier(b) => Some(*b),
                _ => None,
            })
            .collect()
    }
}

/// Aggregate operation counts for a workload, mostly for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Data loads.
    pub reads: u64,
    /// Data stores.
    pub writes: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Lock releases.
    pub unlocks: u64,
    /// Flag sets (including resets).
    pub flag_sets: u64,
    /// Flag waits.
    pub flag_waits: u64,
    /// Barrier arrivals (per thread per barrier op).
    pub barriers: u64,
    /// Atomic read-modify-writes (all three RMW flavors).
    pub atomics: u64,
    /// Total compute cycles.
    pub compute_cycles: u64,
}

/// A complete multi-threaded workload: one program per thread plus the
/// address layout shared with the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: String,
    threads: Vec<ThreadProgram>,
    layout: AddressLayout,
}

/// Structural problems detected by [`Workload::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// An `Unlock` with no matching held lock, or a `Lock` of an
    /// already-held lock (self-deadlock).
    LockDiscipline {
        /// The offending thread.
        thread: ThreadId,
        /// Index of the offending op in the thread's program.
        op_index: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A thread ends while still holding locks.
    LocksHeldAtExit {
        /// The offending thread.
        thread: ThreadId,
        /// How many locks are still held.
        held: usize,
    },
    /// Threads disagree on the order/multiset of barriers they pass.
    BarrierMismatch {
        /// The first thread whose barrier sequence deviates from thread 0's.
        thread: ThreadId,
    },
    /// A sync-object ID is out of range for the layout.
    IdOutOfRange {
        /// The offending thread.
        thread: ThreadId,
        /// Index of the offending op.
        op_index: usize,
    },
    /// A data access targets the synchronization region (data and sync
    /// accesses must be distinguishable, §2.7.3).
    DataAccessInSyncRegion {
        /// The offending thread.
        thread: ThreadId,
        /// The offending address.
        addr: Addr,
    },
    /// A flag is waited on but never set by any thread (guaranteed
    /// deadlock).
    FlagNeverSet {
        /// The flag's user-visible ID.
        flag: u32,
    },
    /// A flag wait that only the waiting thread itself could satisfy —
    /// and only *after* the wait (guaranteed deadlock: the thread blocks
    /// before reaching its own set, and no other thread ever sets the
    /// flag).
    FlagWaitUnsatisfiable {
        /// The flag's user-visible ID.
        flag: u32,
        /// The waiting thread.
        thread: ThreadId,
        /// Index of the wait in the thread's program.
        op_index: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::LockDiscipline {
                thread,
                op_index,
                detail,
            } => write!(
                f,
                "lock discipline violation at {thread} op {op_index}: {detail}"
            ),
            WorkloadError::LocksHeldAtExit { thread, held } => {
                write!(f, "{thread} exits holding {held} lock(s)")
            }
            WorkloadError::BarrierMismatch { thread } => {
                write!(f, "{thread} passes a different barrier sequence than T0")
            }
            WorkloadError::IdOutOfRange { thread, op_index } => {
                write!(f, "sync object id out of range at {thread} op {op_index}")
            }
            WorkloadError::DataAccessInSyncRegion { thread, addr } => {
                write!(f, "data access to sync region address {addr} by {thread}")
            }
            WorkloadError::FlagNeverSet { flag } => {
                write!(f, "flag #{flag} is waited on but never set")
            }
            WorkloadError::FlagWaitUnsatisfiable {
                flag,
                thread,
                op_index,
            } => write!(
                f,
                "flag #{flag} wait at {thread} op {op_index} can only be \
                 satisfied by the same thread's later set (deadlock)"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl Workload {
    /// Assembles a workload; prefer
    /// [`WorkloadBuilder`](crate::builder::WorkloadBuilder).
    pub fn new(
        name: impl Into<String>,
        threads: Vec<ThreadProgram>,
        layout: AddressLayout,
    ) -> Self {
        Workload {
            name: name.into(),
            threads,
            layout,
        }
    }

    /// The workload's name (e.g. `"fft"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-thread programs, indexed by [`ThreadId`].
    pub fn threads(&self) -> &[ThreadProgram] {
        &self.threads
    }

    /// The program for one thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread(&self, tid: ThreadId) -> &ThreadProgram {
        &self.threads[tid.index()]
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The shared address layout.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// Total operations across all threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(ThreadProgram::len).sum()
    }

    /// Aggregate op counts across all threads.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for t in &self.threads {
            for op in t.iter() {
                match op {
                    Op::Read(_) => c.reads += 1,
                    Op::Write(_) => c.writes += 1,
                    Op::Lock(_) => c.locks += 1,
                    Op::Unlock(_) => c.unlocks += 1,
                    Op::FlagSet(_) | Op::FlagReset(_) => c.flag_sets += 1,
                    Op::FlagWait(_) => c.flag_waits += 1,
                    Op::Barrier(_) => c.barriers += 1,
                    Op::Atomic(_, _) => c.atomics += 1,
                    Op::Compute(n) => c.compute_cycles += u64::from(*n),
                }
            }
        }
        c
    }

    /// Returns a copy under a different name (shrunk reproducers get
    /// renamed so corpus entries are self-describing).
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> Workload {
        Workload {
            name: name.into(),
            threads: self.threads.clone(),
            layout: self.layout,
        }
    }

    /// Returns a copy with thread `tid`'s program removed (higher
    /// threads shift down). The layout is kept: addresses and sync-object
    /// IDs stay stable so a shrunk workload exercises the same lines.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or the workload has one thread.
    #[must_use]
    pub fn without_thread(&self, tid: usize) -> Workload {
        assert!(tid < self.threads.len(), "thread {tid} out of range");
        assert!(self.threads.len() > 1, "cannot remove the last thread");
        let mut threads = self.threads.clone();
        threads.remove(tid);
        Workload {
            name: self.name.clone(),
            threads,
            layout: self.layout,
        }
    }

    /// Returns a copy with op `op_index` of thread `tid` removed.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn without_op(&self, tid: usize, op_index: usize) -> Workload {
        let mut threads = self.threads.clone();
        let mut ops = std::mem::take(&mut threads[tid].ops);
        ops.remove(op_index);
        threads[tid] = ThreadProgram::from_ops(ops);
        Workload {
            name: self.name.clone(),
            threads,
            layout: self.layout,
        }
    }

    /// Returns a copy keeping only the ops for which `keep` returns
    /// `true` (called with the thread, the op's index in that thread,
    /// and the op). The workhorse of programmatic shrinking: dropping a
    /// sync object, a barrier crossing, or a lock region is one
    /// predicate.
    #[must_use]
    pub fn filter_ops(&self, mut keep: impl FnMut(ThreadId, usize, &Op) -> bool) -> Workload {
        let threads = self
            .threads
            .iter()
            .enumerate()
            .map(|(ti, prog)| {
                let tid = ThreadId(ti as u16);
                ThreadProgram::from_ops(
                    prog.iter()
                        .enumerate()
                        .filter(|(i, op)| keep(tid, *i, op))
                        .map(|(_, op)| *op)
                        .collect(),
                )
            })
            .collect();
        Workload {
            name: self.name.clone(),
            threads,
            layout: self.layout,
        }
    }

    /// Checks structural well-formedness: balanced lock/unlock per
    /// thread, identical barrier sequences across threads, in-range
    /// object IDs, data accesses outside the sync region, and every
    /// waited flag set somewhere.
    ///
    /// # Errors
    ///
    /// Returns the first [`WorkloadError`] found.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let mut set_flags: HashSet<u32> = HashSet::new();
        // First `FlagSet` index per (flag, thread), for the wait
        // satisfiability check below.
        let mut first_set: HashMap<(u32, usize), usize> = HashMap::new();
        // Every wait site in scan order, so errors are reported at the
        // first offending wait deterministically.
        let mut waits: Vec<(usize, usize, u32)> = Vec::new();

        for (ti, prog) in self.threads.iter().enumerate() {
            let thread = ThreadId(ti as u16);
            let mut held: HashSet<u32> = HashSet::new();
            for (i, op) in prog.iter().enumerate() {
                match op {
                    Op::Read(a) | Op::Write(a) => {
                        if self.layout.is_sync_region(*a) {
                            return Err(WorkloadError::DataAccessInSyncRegion { thread, addr: *a });
                        }
                    }
                    Op::Lock(l) => {
                        if l.0 >= self.layout.user_locks() {
                            return Err(WorkloadError::IdOutOfRange {
                                thread,
                                op_index: i,
                            });
                        }
                        if !held.insert(l.0) {
                            return Err(WorkloadError::LockDiscipline {
                                thread,
                                op_index: i,
                                detail: format!("lock #{} acquired while already held", l.0),
                            });
                        }
                    }
                    Op::Unlock(l) => {
                        if !held.remove(&l.0) {
                            return Err(WorkloadError::LockDiscipline {
                                thread,
                                op_index: i,
                                detail: format!("lock #{} released while not held", l.0),
                            });
                        }
                    }
                    Op::FlagSet(g) | Op::FlagReset(g) => {
                        if g.0 >= self.layout.user_flags() {
                            return Err(WorkloadError::IdOutOfRange {
                                thread,
                                op_index: i,
                            });
                        }
                        if matches!(op, Op::FlagSet(_)) {
                            set_flags.insert(g.0);
                            first_set.entry((g.0, ti)).or_insert(i);
                        }
                    }
                    Op::FlagWait(g) => {
                        if g.0 >= self.layout.user_flags() {
                            return Err(WorkloadError::IdOutOfRange {
                                thread,
                                op_index: i,
                            });
                        }
                        waits.push((ti, i, g.0));
                    }
                    Op::Barrier(b) => {
                        if b.0 >= self.layout.barriers() {
                            return Err(WorkloadError::IdOutOfRange {
                                thread,
                                op_index: i,
                            });
                        }
                    }
                    Op::Atomic(a, _) => {
                        if a.0 >= self.layout.user_atomics() {
                            return Err(WorkloadError::IdOutOfRange {
                                thread,
                                op_index: i,
                            });
                        }
                    }
                    Op::Compute(_) => {}
                }
            }
            if !held.is_empty() {
                return Err(WorkloadError::LocksHeldAtExit {
                    thread,
                    held: held.len(),
                });
            }
        }

        if let Some(reference) = self.threads.first().map(ThreadProgram::barrier_sequence) {
            for (ti, prog) in self.threads.iter().enumerate().skip(1) {
                if prog.barrier_sequence() != reference {
                    return Err(WorkloadError::BarrierMismatch {
                        thread: ThreadId(ti as u16),
                    });
                }
            }
        }

        for (ti, i, flag) in waits {
            if !set_flags.contains(&flag) {
                return Err(WorkloadError::FlagNeverSet { flag });
            }
            // A wait is satisfiable if another thread sets the flag
            // (anywhere — concurrency decides when), or the waiting
            // thread itself set it *earlier* in program order. A flag
            // whose only sets sit behind the wait in the same thread is
            // a guaranteed deadlock the old never-set check missed.
            let other_setter =
                (0..self.threads.len()).any(|tj| tj != ti && first_set.contains_key(&(flag, tj)));
            let own_earlier = first_set.get(&(flag, ti)).is_some_and(|&s| s < i);
            if !other_setter && !own_earlier {
                return Err(WorkloadError::FlagWaitUnsatisfiable {
                    flag,
                    thread: ThreadId(ti as u16),
                    op_index: i,
                });
            }
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FlagId, LockId};

    fn layout() -> AddressLayout {
        AddressLayout::new(2, 2, 1, 1024)
    }

    fn wl(threads: Vec<Vec<Op>>) -> Workload {
        Workload::new(
            "test",
            threads.into_iter().map(ThreadProgram::from_ops).collect(),
            layout(),
        )
    }

    #[test]
    fn valid_workload_passes() {
        let w = wl(vec![
            vec![
                Op::Lock(LockId(0)),
                Op::Write(Addr::new(0x40)),
                Op::Unlock(LockId(0)),
                Op::FlagSet(FlagId(0)),
                Op::Barrier(BarrierId(0)),
            ],
            vec![
                Op::FlagWait(FlagId(0)),
                Op::Read(Addr::new(0x40)),
                Op::Barrier(BarrierId(0)),
            ],
        ]);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.reads, 1);
        assert_eq!(c.writes, 1);
        assert_eq!(c.locks, 1);
        assert_eq!(c.barriers, 2);
    }

    #[test]
    fn unlock_without_lock_rejected() {
        let w = wl(vec![vec![Op::Unlock(LockId(0))]]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::LockDiscipline { .. })
        ));
    }

    #[test]
    fn double_lock_rejected() {
        let w = wl(vec![vec![Op::Lock(LockId(0)), Op::Lock(LockId(0))]]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::LockDiscipline { .. })
        ));
    }

    #[test]
    fn exit_holding_lock_rejected() {
        let w = wl(vec![vec![Op::Lock(LockId(0))]]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::LocksHeldAtExit { held: 1, .. })
        ));
    }

    #[test]
    fn barrier_sequence_mismatch_rejected() {
        let w = wl(vec![vec![Op::Barrier(BarrierId(0))], vec![]]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn data_access_to_sync_region_rejected() {
        let sync_addr = layout().lock_addr(LockId(0));
        let w = wl(vec![vec![Op::Read(sync_addr)]]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::DataAccessInSyncRegion { .. })
        ));
    }

    #[test]
    fn unset_flag_rejected() {
        let w = wl(vec![vec![Op::FlagWait(FlagId(1))]]);
        assert_eq!(w.validate(), Err(WorkloadError::FlagNeverSet { flag: 1 }));
    }

    #[test]
    fn atomic_ops_validated_and_counted() {
        use crate::op::AtomicRmwKind;
        use crate::types::AtomicId;
        let l = AddressLayout::new(0, 0, 0, 64).with_atomics(1);
        let ok = Workload::new(
            "a",
            vec![ThreadProgram::from_ops(vec![
                Op::Atomic(AtomicId(0), AtomicRmwKind::CasLoop),
                Op::Atomic(AtomicId(0), AtomicRmwKind::FetchAdd),
            ])],
            l,
        );
        ok.validate().unwrap();
        assert_eq!(ok.op_counts().atomics, 2);
        let bad = Workload::new(
            "b",
            vec![ThreadProgram::from_ops(vec![Op::Atomic(
                AtomicId(1),
                AtomicRmwKind::Exchange,
            )])],
            l,
        );
        assert!(matches!(
            bad.validate(),
            Err(WorkloadError::IdOutOfRange { .. })
        ));
    }

    #[test]
    fn out_of_range_ids_rejected() {
        // User lock ids stop below the barrier-internal ids.
        let w = wl(vec![vec![Op::Lock(LockId(2)), Op::Unlock(LockId(2))]]);
        assert!(matches!(
            w.validate(),
            Err(WorkloadError::IdOutOfRange { .. })
        ));
    }

    #[test]
    fn self_set_after_wait_rejected() {
        // The only set of flag 0 sits *behind* the wait in the same
        // thread: the thread blocks before reaching it. The old
        // never-set check accepted this (the flag *is* set somewhere)
        // and the deadlock surfaced only at sim time.
        let w = wl(vec![vec![Op::FlagWait(FlagId(0)), Op::FlagSet(FlagId(0))]]);
        assert_eq!(
            w.validate(),
            Err(WorkloadError::FlagWaitUnsatisfiable {
                flag: 0,
                thread: ThreadId(0),
                op_index: 0,
            })
        );
    }

    #[test]
    fn self_set_before_wait_accepted() {
        let w = wl(vec![vec![Op::FlagSet(FlagId(0)), Op::FlagWait(FlagId(0))]]);
        w.validate().unwrap();
    }

    #[test]
    fn other_thread_set_after_is_satisfiable() {
        // Another thread sets the flag; program positions are
        // irrelevant because the threads run concurrently.
        let w = wl(vec![
            vec![Op::FlagWait(FlagId(0))],
            vec![Op::Compute(100), Op::FlagSet(FlagId(0))],
        ]);
        w.validate().unwrap();
    }

    #[test]
    fn mutation_helpers_preserve_layout() {
        let w = wl(vec![
            vec![Op::Write(Addr::new(0x40)), Op::Compute(5)],
            vec![Op::Read(Addr::new(0x40))],
        ]);
        let renamed = w.renamed("shrunk");
        assert_eq!(renamed.name(), "shrunk");
        assert_eq!(renamed.layout(), w.layout());

        let dropped = w.without_thread(1);
        assert_eq!(dropped.num_threads(), 1);
        assert_eq!(dropped.thread(ThreadId(0)).len(), 2);

        let trimmed = w.without_op(0, 1);
        assert_eq!(
            trimmed.thread(ThreadId(0)).ops(),
            &[Op::Write(Addr::new(0x40))]
        );
        assert_eq!(trimmed.thread(ThreadId(1)).len(), 1);

        let no_compute = w.filter_ops(|_, _, op| !matches!(op, Op::Compute(_)));
        assert_eq!(no_compute.thread(ThreadId(0)).len(), 1);
        assert_eq!(no_compute.thread(ThreadId(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "last thread")]
    fn removing_last_thread_panics() {
        let w = wl(vec![vec![Op::Compute(1)]]);
        let _ = w.without_thread(0);
    }

    #[test]
    fn instruction_count_sums_compute() {
        let p = ThreadProgram::from_ops(vec![
            Op::Read(Addr::new(0)),
            Op::Compute(10),
            Op::Write(Addr::new(4)),
        ]);
        assert_eq!(p.instruction_count(), 12);
    }

    #[test]
    fn error_display_nonempty() {
        let e = WorkloadError::FlagNeverSet { flag: 3 };
        assert!(!format!("{e}").is_empty());
    }
}
