//! A line-oriented text format for workloads.
//!
//! Lets generated workloads be dumped for inspection, diffed, shipped to
//! external tools, or checked in as regression fixtures. The format is
//! deliberately trivial:
//!
//! ```text
//! # cord workload v1
//! workload fft threads=4 locks=0 flags=0 barriers=1 data_words=1024
//! thread 0
//!   read 0x100
//!   write 0x104
//!   lock 0
//!   unlock 0
//!   flag_set 0
//!   flag_wait 0
//!   flag_reset 0
//!   barrier 0
//!   compute 50
//! thread 1
//!   ...
//! ```
//!
//! `locks`/`flags`/`barriers` in the header are the *user* object counts
//! (barrier-internal objects are derived). A trailing `atomics=N` header
//! token appears only when the workload allocates atomic RMW words, so
//! pre-atomic fixtures stay byte-identical. Round-tripping any valid
//! workload is lossless.

use crate::layout::AddressLayout;
use crate::op::{AtomicRmwKind, Op};
use crate::program::{ThreadProgram, Workload};
use crate::types::{Addr, AtomicId, BarrierId, FlagId, LockId};
use std::fmt::Write as _;

/// Magic first line of the format.
pub const HEADER: &str = "# cord workload v1";

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The first line is not [`HEADER`].
    BadHeader,
    /// The `workload …` line is missing or malformed.
    BadWorkloadLine {
        /// The offending line number (1-based).
        line: usize,
    },
    /// An operation line could not be parsed.
    BadOp {
        /// The offending line number (1-based).
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A `thread N` header is out of order or out of range.
    BadThread {
        /// The offending line number (1-based).
        line: usize,
    },
    /// An op appeared before any `thread N` header.
    OpOutsideThread {
        /// The offending line number (1-based).
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing '{HEADER}' header"),
            ParseError::BadWorkloadLine { line } => {
                write!(f, "line {line}: malformed workload line")
            }
            ParseError::BadOp { line, text } => write!(f, "line {line}: bad op '{text}'"),
            ParseError::BadThread { line } => write!(f, "line {line}: bad thread header"),
            ParseError::OpOutsideThread { line } => {
                write!(f, "line {line}: op before any 'thread N' header")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn op_line(op: &Op) -> String {
    match op {
        Op::Read(a) => format!("  read {:#x}", a.byte()),
        Op::Write(a) => format!("  write {:#x}", a.byte()),
        Op::Lock(l) => format!("  lock {}", l.0),
        Op::Unlock(l) => format!("  unlock {}", l.0),
        Op::FlagSet(g) => format!("  flag_set {}", g.0),
        Op::FlagWait(g) => format!("  flag_wait {}", g.0),
        Op::FlagReset(g) => format!("  flag_reset {}", g.0),
        Op::Barrier(b) => format!("  barrier {}", b.0),
        Op::Atomic(a, AtomicRmwKind::CasLoop) => format!("  cas_loop {}", a.0),
        Op::Atomic(a, AtomicRmwKind::FetchAdd) => format!("  fetch_add {}", a.0),
        Op::Atomic(a, AtomicRmwKind::Exchange) => format!("  exchange {}", a.0),
        Op::Compute(n) => format!("  compute {n}"),
    }
}

/// Serializes a workload to the text format.
pub fn to_text(w: &Workload) -> String {
    let l = w.layout();
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = write!(
        out,
        "workload {} threads={} locks={} flags={} barriers={} data_words={}",
        w.name(),
        w.num_threads(),
        l.user_locks(),
        l.user_flags(),
        l.barriers(),
        l.data_words(),
    );
    if l.user_atomics() > 0 {
        let _ = write!(out, " atomics={}", l.user_atomics());
    }
    out.push('\n');
    for (t, prog) in w.threads().iter().enumerate() {
        let _ = writeln!(out, "thread {t}");
        for op in prog.iter() {
            let _ = writeln!(out, "{}", op_line(op));
        }
    }
    out
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_kv(tok: &str, key: &str) -> Option<u64> {
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .and_then(parse_u64)
}

/// Parses a workload from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed line. The
/// parsed workload is additionally structurally validated.
pub fn from_text(text: &str) -> Result<Workload, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or(ParseError::BadHeader)?;
    if first.trim() != HEADER {
        return Err(ParseError::BadHeader);
    }
    let (wline_no, wline) = lines
        .next()
        .ok_or(ParseError::BadWorkloadLine { line: 2 })?;
    let toks: Vec<&str> = wline.split_whitespace().collect();
    let err = ParseError::BadWorkloadLine { line: wline_no + 1 };
    if !(7..=8).contains(&toks.len()) || toks[0] != "workload" {
        return Err(err.clone());
    }
    let name = toks[1].to_string();
    let threads = parse_kv(toks[2], "threads").ok_or(err.clone())? as usize;
    let locks = parse_kv(toks[3], "locks").ok_or(err.clone())? as u32;
    let flags = parse_kv(toks[4], "flags").ok_or(err.clone())? as u32;
    let barriers = parse_kv(toks[5], "barriers").ok_or(err.clone())? as u32;
    let data_words = parse_kv(toks[6], "data_words").ok_or(err.clone())?;
    let atomics = match toks.get(7) {
        Some(tok) => parse_kv(tok, "atomics").ok_or(err)? as u32,
        None => 0,
    };

    let mut programs: Vec<Vec<Op>> = vec![Vec::new(); threads];
    let mut current: Option<usize> = None;
    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("thread ") {
            let t: usize = rest
                .trim()
                .parse()
                .map_err(|_| ParseError::BadThread { line: line_no })?;
            if t >= threads {
                return Err(ParseError::BadThread { line: line_no });
            }
            current = Some(t);
            continue;
        }
        let t = current.ok_or(ParseError::OpOutsideThread { line: line_no })?;
        let bad = || ParseError::BadOp {
            line: line_no,
            text: line.to_string(),
        };
        let (word, arg) = line.split_once(' ').ok_or_else(bad)?;
        let arg = arg.trim();
        let op = match word {
            "read" => Op::Read(Addr::new(parse_u64(arg).ok_or_else(bad)?)),
            "write" => Op::Write(Addr::new(parse_u64(arg).ok_or_else(bad)?)),
            "lock" => Op::Lock(LockId(parse_u64(arg).ok_or_else(bad)? as u32)),
            "unlock" => Op::Unlock(LockId(parse_u64(arg).ok_or_else(bad)? as u32)),
            "flag_set" => Op::FlagSet(FlagId(parse_u64(arg).ok_or_else(bad)? as u32)),
            "flag_wait" => Op::FlagWait(FlagId(parse_u64(arg).ok_or_else(bad)? as u32)),
            "flag_reset" => Op::FlagReset(FlagId(parse_u64(arg).ok_or_else(bad)? as u32)),
            "barrier" => Op::Barrier(BarrierId(parse_u64(arg).ok_or_else(bad)? as u32)),
            "cas_loop" => Op::Atomic(
                AtomicId(parse_u64(arg).ok_or_else(bad)? as u32),
                AtomicRmwKind::CasLoop,
            ),
            "fetch_add" => Op::Atomic(
                AtomicId(parse_u64(arg).ok_or_else(bad)? as u32),
                AtomicRmwKind::FetchAdd,
            ),
            "exchange" => Op::Atomic(
                AtomicId(parse_u64(arg).ok_or_else(bad)? as u32),
                AtomicRmwKind::Exchange,
            ),
            "compute" => Op::Compute(parse_u64(arg).ok_or_else(bad)? as u32),
            _ => return Err(bad()),
        };
        programs[t].push(op);
    }

    let layout = AddressLayout::new(locks, flags, barriers, data_words).with_atomics(atomics);
    Ok(Workload::new(
        name,
        programs.into_iter().map(ThreadProgram::from_ops).collect(),
        layout,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkloadBuilder;

    fn demo() -> Workload {
        let mut b = WorkloadBuilder::new("demo", 2);
        let l = b.alloc_lock();
        let g = b.alloc_flag();
        let bar = b.alloc_barrier();
        let d = b.alloc_line_aligned(4);
        b.thread_mut(0)
            .lock(l)
            .update(d.word(0))
            .unlock(l)
            .flag_set(g)
            .barrier(bar)
            .compute(99);
        b.thread_mut(1)
            .flag_wait(g)
            .flag_reset(g)
            .read(d.word(0))
            .barrier(bar);
        b.build()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let w = demo();
        let text = to_text(&w);
        let back = from_text(&text).expect("parses");
        assert_eq!(w, back);
        back.validate().expect("still valid");
    }

    #[test]
    fn format_is_human_readable() {
        let text = to_text(&demo());
        assert!(text.starts_with(HEADER));
        assert!(text.contains("workload demo threads=2 locks=1 flags=1 barriers=1"));
        assert!(text.contains("  lock 0"));
        assert!(text.contains("  flag_wait 0"));
        assert!(text.contains("  compute 99"));
    }

    #[test]
    fn atomics_header_token_only_when_used() {
        let text = to_text(&demo());
        assert!(
            !text.contains("atomics="),
            "pre-atomic fixtures must not drift"
        );

        let mut b = WorkloadBuilder::new("atomic-demo", 2);
        let a = b.alloc_atomic();
        let d = b.alloc_words(1);
        b.thread_mut(0).write(d.word(0)).cas_loop(a);
        b.thread_mut(1).fetch_add(a).exchange(a);
        let w = b.build();
        let text = to_text(&w);
        assert!(text.contains("data_words=1 atomics=1"));
        assert!(text.contains("  cas_loop 0"));
        assert!(text.contains("  fetch_add 0"));
        assert!(text.contains("  exchange 0"));
        let back = from_text(&text).expect("parses");
        assert_eq!(w, back);
        back.validate().expect("still valid");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut text = to_text(&demo());
        text.push_str("\n# trailing comment\n\n");
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn header_required() {
        assert_eq!(from_text("nope"), Err(ParseError::BadHeader));
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn bad_lines_are_located() {
        let text = format!("{HEADER}\nworkload x threads=1 locks=0 flags=0 barriers=0 data_words=0\nthread 0\n  frobnicate 3\n");
        match from_text(&text) {
            Err(ParseError::BadOp { line: 4, .. }) => {}
            other => panic!("expected BadOp at line 4, got {other:?}"),
        }
        let text = format!(
            "{HEADER}\nworkload x threads=1 locks=0 flags=0 barriers=0 data_words=0\n  read 0x0\n"
        );
        assert!(matches!(
            from_text(&text),
            Err(ParseError::OpOutsideThread { line: 3 })
        ));
        let text = format!(
            "{HEADER}\nworkload x threads=1 locks=0 flags=0 barriers=0 data_words=0\nthread 9\n"
        );
        assert!(matches!(
            from_text(&text),
            Err(ParseError::BadThread { line: 3 })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseError::BadOp {
            line: 7,
            text: "xyz".into(),
        };
        assert!(format!("{e}").contains("line 7"));
    }
}
