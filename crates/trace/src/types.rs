//! Fundamental identifiers and address arithmetic.
//!
//! The simulated machine uses 64-byte cache lines of sixteen 4-byte words,
//! matching the paper's line geometry ("with 64-byte cache lines…",
//! §2.3). All data accesses are word-granular, like the per-word access
//! bits CORD keeps.

use std::fmt;

/// Bytes per cache line (64, as in the paper).
pub const LINE_BYTES: u64 = 64;
/// Bytes per data word (4); CORD keeps read/write bits per word.
pub const WORD_BYTES: u64 = 4;
/// Words per cache line (16).
pub const WORDS_PER_LINE: u64 = LINE_BYTES / WORD_BYTES;

/// A thread identifier (the paper uses 16-bit thread IDs in log entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// The thread index as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A byte address in the simulated physical address space.
///
/// Word-aligned for all accesses; use [`Addr::line`] and [`Addr::word_in_line`]
/// to decompose into the cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Constructs an address, checking word alignment.
    ///
    /// # Panics
    ///
    /// Panics if `byte` is not 4-byte aligned.
    #[inline]
    pub fn new(byte: u64) -> Self {
        assert!(
            byte.is_multiple_of(WORD_BYTES),
            "address {byte:#x} is not word-aligned"
        );
        Addr(byte)
    }

    /// The raw byte address.
    #[inline]
    pub const fn byte(self) -> u64 {
        self.0
    }

    /// The address of the cache line containing this word.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The word index (0..16) of this address within its line.
    #[inline]
    pub const fn word_in_line(self) -> usize {
        ((self.0 % LINE_BYTES) / WORD_BYTES) as usize
    }

    /// The address `n` words after this one.
    #[inline]
    #[must_use]
    pub const fn offset_words(self, n: u64) -> Addr {
        Addr(self.0 + n * WORD_BYTES)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line number (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first word in the line.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A mutex identifier; resolved to an address by the workload's layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// A flag (condition) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlagId(pub u32);

/// A barrier identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

/// An atomic word identifier (the target of a read-modify-write op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomicId(pub u32);

/// A contiguous range of data words allocated by the workload builder.
///
/// # Examples
///
/// ```
/// use cord_trace::types::{Addr, WordRange};
///
/// let r = WordRange::new(Addr::new(0x100), 8);
/// assert_eq!(r.word(3), Addr::new(0x10c));
/// assert_eq!(r.len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordRange {
    base: Addr,
    words: u64,
}

impl WordRange {
    /// A range of `words` words starting at `base`.
    pub fn new(base: Addr, words: u64) -> Self {
        WordRange { base, words }
    }

    /// The `i`-th word of the range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn word(&self, i: u64) -> Addr {
        assert!(i < self.words, "word index {i} out of range {}", self.words);
        self.base.offset_words(i)
    }

    /// Like [`WordRange::word`] but wraps the index, handy for strided
    /// sweeps.
    #[inline]
    pub fn word_wrapping(&self, i: u64) -> Addr {
        self.base.offset_words(i % self.words)
    }

    /// First address of the range.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of words.
    #[inline]
    pub fn len(&self) -> u64 {
        self.words
    }

    /// `true` if the range holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// One address past the end of the range.
    #[inline]
    pub fn end(&self) -> Addr {
        self.base.offset_words(self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_geometry() {
        assert_eq!(WORDS_PER_LINE, 16);
        let a = Addr::new(0x1044);
        assert_eq!(a.line(), LineAddr(0x41));
        assert_eq!(a.word_in_line(), 1);
        assert_eq!(a.line().base(), Addr::new(0x1040));
    }

    #[test]
    #[should_panic(expected = "not word-aligned")]
    fn misaligned_address_rejected() {
        let _ = Addr::new(0x1001);
    }

    #[test]
    fn offset_words_advances_bytes() {
        assert_eq!(Addr::new(0x100).offset_words(4), Addr::new(0x110));
    }

    #[test]
    fn word_range_indexing() {
        let r = WordRange::new(Addr::new(0x200), 4);
        assert_eq!(r.word(0), Addr::new(0x200));
        assert_eq!(r.word(3), Addr::new(0x20c));
        assert_eq!(r.word_wrapping(5), Addr::new(0x204));
        assert_eq!(r.end(), Addr::new(0x210));
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_range_bounds_checked() {
        WordRange::new(Addr::new(0x200), 4).word(4);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr(2)), "L0x2");
    }
}
