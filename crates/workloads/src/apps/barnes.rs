//! `barnes` — Barnes-Hut N-body (paper input: `n2048`).
//!
//! Per timestep: a tree-build phase where every thread inserts its
//! bodies into the shared octree under *fine-grain per-cell locks*
//! (hashed into a pool, like Splash-2's lock array), then a barrier,
//! then a force phase that reads a body-dependent sample of tree cells
//! (heavily read-shared, no locks) and writes the owned bodies, then a
//! position-update phase. This is the paper's canonical
//! many-small-critical-sections app.

use crate::common::{sample_indices, KernelParams};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

const BODY_WORDS: u64 = 8; // position, velocity, force, mass...
const CELL_WORDS: u64 = 4;
const CELL_LOCKS: u32 = 32;
const TIMESTEPS: u64 = 2;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let bodies = 128 * p.scale;
    let cells = bodies / 2;
    let mut b = WorkloadBuilder::new("barnes", p.threads);
    let body_arr = b.alloc_line_aligned(bodies * BODY_WORDS);
    let cell_arr = b.alloc_line_aligned(cells * CELL_WORDS);
    let locks = b.alloc_locks(CELL_LOCKS);
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0xBA4);

    // Pre-draw each body's insertion path and interaction sample.
    let paths: Vec<Vec<u64>> = (0..bodies)
        .map(|_| sample_indices(&mut rng, 3, cells))
        .collect();
    let interactions: Vec<Vec<u64>> = (0..bodies)
        .map(|_| sample_indices(&mut rng, 8, cells))
        .collect();

    for t in 0..p.threads {
        let own = p.chunk(bodies, t);
        let tb = &mut b.thread_mut(t);
        for _step in 0..TIMESTEPS {
            // Tree build: insert each owned body along its cell path.
            for body in own.clone() {
                tb.read(body_arr.word(body * BODY_WORDS));
                for &cell in &paths[body as usize] {
                    // Walking a tree level costs address arithmetic and
                    // subdivision tests before the locked insertion.
                    tb.compute(24);
                    let lock = locks[(cell % u64::from(CELL_LOCKS)) as usize];
                    tb.lock(lock);
                    tb.update(cell_arr.word(cell * CELL_WORDS));
                    tb.update(cell_arr.word(cell * CELL_WORDS + 1));
                    tb.unlock(lock);
                }
            }
            tb.barrier(barrier);
            // Center-of-mass propagation: each thread sweeps its own
            // slice of cells, reading two sampled "child" cells and
            // folding them into the owned cell — Splash-2's upward pass
            // (lock-free: cell ownership is partitioned, children are
            // read-only here, ordered by the barriers on both sides).
            for cell in p.chunk(cells, t) {
                let child_a = (2 * cell + 1) % cells;
                let child_b = (2 * cell + 2) % cells;
                // Children are read at words 0/1 (stable since the
                // build phase); the fold writes words 2/3 of the owned
                // cell only, so nothing in this phase conflicts.
                tb.read(cell_arr.word(child_a * CELL_WORDS));
                tb.read(cell_arr.word(child_b * CELL_WORDS + 1));
                tb.compute(8);
                tb.write(cell_arr.word(cell * CELL_WORDS + 2));
                tb.write(cell_arr.word(cell * CELL_WORDS + 3));
            }
            tb.barrier(barrier);
            // Force computation: read-shared tree traversal, write own
            // body's force words.
            for body in own.clone() {
                for &cell in &interactions[body as usize] {
                    tb.read(cell_arr.word(cell * CELL_WORDS));
                    tb.read(cell_arr.word(cell * CELL_WORDS + 2));
                    // Gravity kernel: ~20 FLOPs per interaction.
                    tb.compute(20);
                }
                tb.compute(32);
                tb.write(body_arr.word(body * BODY_WORDS + 4));
                tb.write(body_arr.word(body * BODY_WORDS + 5));
            }
            tb.barrier(barrier);
            // Position update: own bodies only.
            for body in own.clone() {
                tb.update(body_arr.word(body * BODY_WORDS));
                tb.update(body_arr.word(body * BODY_WORDS + 1));
            }
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_grain_locks_and_phases() {
        let p = KernelParams {
            threads: 4,
            seed: 4,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // 3 lock acquisitions per body per timestep.
        assert_eq!(c.locks, 128 * 3 * TIMESTEPS);
        assert_eq!(c.barriers, 4 * TIMESTEPS * 4);
        assert!(w.layout().user_locks() == CELL_LOCKS);
    }
}
