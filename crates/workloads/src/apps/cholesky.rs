//! `cholesky` — sparse Cholesky factorization (paper input: `tk23.O`).
//!
//! Supernode tasks come off a global queue; completing one updates a
//! handful of dependent columns, each under that column's lock. The
//! critical sections are tiny and very frequent — §4.1 singles cholesky
//! out as the worst overhead case because "frequent synchronization …
//! results in many timestamp changes, which cause bursts of timestamp
//! removals and race check requests".

use crate::common::{sample_indices, KernelParams, TaskQueue};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

const COL_WORDS: u64 = 8;
const COL_LOCKS: u32 = 16;
const UPDATES_PER_TASK: usize = 4;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let tasks_per_thread = 24 * p.scale;
    let columns = 32 * p.scale;
    let mut b = WorkloadBuilder::new("cholesky", p.threads);
    let col_arr = b.alloc_line_aligned(columns * COL_WORDS);
    let queue = TaskQueue::alloc(&mut b);
    let locks = b.alloc_locks(COL_LOCKS);
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0xC40);

    let total = tasks_per_thread * p.threads as u64;
    let task_cols: Vec<u64> = sample_indices(&mut rng, total as usize, columns);
    let task_updates: Vec<Vec<u64>> = (0..total)
        .map(|_| sample_indices(&mut rng, UPDATES_PER_TASK, columns))
        .collect();

    for t in 0..p.threads {
        let tb = &mut b.thread_mut(t);
        for i in 0..tasks_per_thread {
            queue.take(tb);
            let id = (t as u64 * tasks_per_thread + i) as usize;
            // Factor the supernode's column — under its lock, because
            // concurrent tasks may be adding updates to it.
            let col = task_cols[id];
            let col_lock = locks[(col % u64::from(COL_LOCKS)) as usize];
            tb.lock(col_lock);
            for w in 0..COL_WORDS {
                tb.read(col_arr.word(col * COL_WORDS + w));
            }
            tb.unlock(col_lock);
            tb.compute(20);
            // Tiny locked updates to each dependent column.
            for &dep in &task_updates[id] {
                let lock = locks[(dep % u64::from(COL_LOCKS)) as usize];
                tb.lock(lock);
                tb.update(col_arr.word(dep * COL_WORDS));
                tb.update(col_arr.word(dep * COL_WORDS + 1));
                tb.unlock(lock);
            }
        }
        tb.barrier(barrier);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_heavy_profile() {
        let p = KernelParams {
            threads: 4,
            seed: 11,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // Queue take + 4 column locks per task.
        assert_eq!(c.locks, (2 + UPDATES_PER_TASK as u64) * 24 * 4);
        // Locks per data access is high — the overhead driver.
        let rate = c.locks as f64 / (c.reads + c.writes) as f64;
        assert!(rate > 0.15, "cholesky must be sync-heavy, got {rate}");
    }
}
