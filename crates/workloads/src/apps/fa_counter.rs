//! `fa-counter` — fetch-add combining counter with per-worker result
//! flags.
//!
//! Workers hammer one shared counter with unconditional fetch-adds
//! (never removable — a committed RMW's release-write must stay), then
//! write a per-worker partial result and raise a done flag; the reader
//! contributes its own fetch-add *first* and only then waits each flag
//! and reads that worker's partial.
//!
//! The ordering discipline is deliberate: each worker writes its
//! partial *after* its last fetch-add, so the counter's CAS/RMW chain
//! never covers the partial, and the reader joins the counter before
//! any flag wait, so its counter join cannot rescue a removed wait.
//! The only edge protecting `partial[t]` is `done[t]` — removing that
//! flag wait (§3.4's removed acquire) is a guaranteed true race, and
//! the fetch-add traffic around it is pure noise a detector must not
//! mistake for ordering.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

/// Result words each worker publishes.
const PARTIAL_WORDS: u64 = 4;
/// Fetch-adds per worker, multiplied by the scale factor.
const ADDS_PER_WORKER: u64 = 8;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let workers = if p.threads > 1 { p.threads - 1 } else { 1 };
    let adds = ADDS_PER_WORKER * p.scale;
    let mut b = WorkloadBuilder::new("fa-counter", p.threads);
    let counter = b.alloc_atomic();
    let done = b.alloc_flags(workers as u32);
    // One line per worker's partial: packed partials would false-share,
    // and a neighbour's later write folds this worker's stamps into the
    // memory timestamps where a sibling-served read fill never looks.
    let partials: Vec<_> = (0..workers)
        .map(|_| b.alloc_line_aligned(PARTIAL_WORDS))
        .collect();

    for t in 0..workers {
        let tb = &mut b.thread_mut(t);
        for k in 0..adds {
            tb.compute((k % 5) as u32 + 3 * t as u32 + 1);
            tb.fetch_add(counter);
        }
        // The partial goes out after the last fetch-add on purpose:
        // counter joins must never cover it (see module docs).
        for w in 0..PARTIAL_WORDS {
            tb.write(partials[t].word(w));
        }
        tb.flag_set(done[t]);
    }

    // The reader (last thread; the sole thread when single-threaded)
    // adds its own contribution before waiting on anyone.
    let tb = &mut b.thread_mut(p.threads - 1);
    tb.fetch_add(counter);
    for t in 0..workers {
        tb.flag_wait(done[t]);
        for w in 0..PARTIAL_WORDS {
            tb.read(partials[t].word(w));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_structure() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // 3 workers x 8 adds + the reader's 1.
        assert_eq!(c.atomics, 3 * ADDS_PER_WORKER + 1);
        assert_eq!(c.flag_sets, 3);
        assert_eq!(c.flag_waits, 3);
        assert_eq!(c.writes, 3 * PARTIAL_WORDS);
        assert_eq!(c.reads, 3 * PARTIAL_WORDS);
    }

    #[test]
    fn single_thread_degenerates_cleanly() {
        let p = KernelParams {
            threads: 1,
            seed: 1,
            scale: 1,
        };
        build(p).validate().unwrap();
    }
}
