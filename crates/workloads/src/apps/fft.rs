//! `fft` — the Splash-2 six-step FFT (paper input: `m16`).
//!
//! The six-step algorithm over an n×n matrix of complex values:
//! transpose, row FFTs, twiddle multiplication (against a read-shared
//! roots-of-unity table), transpose, row FFTs, final transpose. Threads
//! own contiguous row bands; each transpose makes every thread read
//! columns out of every other thread's band — the all-to-all
//! communication FFT is known for. The only synchronization is the
//! barrier between steps.

use crate::common::KernelParams;
use cord_trace::builder::{ThreadBuilder, WorkloadBuilder};
use cord_trace::program::Workload;
use cord_trace::types::WordRange;

/// Words per complex element (re, im).
const CPLX: u64 = 2;

fn elem(m: &WordRange, n: u64, r: u64, c: u64) -> cord_trace::types::Addr {
    m.word((r * n + c) * CPLX)
}

/// Transpose `from` into `to` for the rows in `rows` (reads cross every
/// band, writes stay in the owned band).
fn transpose(
    tb: &mut ThreadBuilder<'_>,
    from: &WordRange,
    to: &WordRange,
    n: u64,
    rows: std::ops::Range<u64>,
) {
    for r in rows {
        for c in 0..n {
            tb.read(elem(from, n, c, r));
            tb.write(elem(to, n, r, c));
        }
        tb.compute(n as u32);
    }
}

/// In-place FFT of the owned rows of `m`, optionally multiplying by the
/// read-shared twiddle table.
fn row_ffts(
    tb: &mut ThreadBuilder<'_>,
    m: &WordRange,
    roots: Option<&WordRange>,
    n: u64,
    rows: std::ops::Range<u64>,
) {
    for r in rows {
        for c in 0..n {
            tb.read(elem(m, n, r, c));
        }
        // O(n log n) butterflies per row.
        tb.compute((4 * n) as u32);
        if let Some(roots) = roots {
            for c in 0..n {
                tb.read(roots.word((r * n + c) % roots.len()));
            }
            tb.compute(n as u32);
        }
        for c in 0..n {
            tb.write(elem(m, n, r, c));
        }
    }
}

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let n = 16 * p.scale.isqrt().max(1);
    let mut b = WorkloadBuilder::new("fft", p.threads);
    let src = b.alloc_line_aligned(n * n * CPLX);
    let work = b.alloc_line_aligned(n * n * CPLX);
    let roots = b.alloc_line_aligned(n * CPLX);
    let barrier = b.alloc_barrier();

    for t in 0..p.threads {
        let rows = p.chunk(n, t);
        let tb = &mut b.thread_mut(t);

        // Step 1: transpose src -> work.
        transpose(tb, &src, &work, n, rows.clone());
        tb.barrier(barrier);
        // Step 2: row FFTs on work.
        row_ffts(tb, &work, None, n, rows.clone());
        tb.barrier(barrier);
        // Step 3: twiddle multiply + row FFTs (reads the shared roots).
        row_ffts(tb, &work, Some(&roots), n, rows.clone());
        tb.barrier(barrier);
        // Step 4: transpose work -> src.
        transpose(tb, &work, &src, n, rows.clone());
        tb.barrier(barrier);
        // Step 5: row FFTs on src.
        row_ffts(tb, &src, None, n, rows.clone());
        tb.barrier(barrier);
        // Step 6: final transpose src -> work.
        transpose(tb, &src, &work, n, rows);
        tb.barrier(barrier);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_steps_of_barriers_and_no_locks() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.locks, 0, "fft uses no user locks");
        assert_eq!(c.barriers as usize, 6 * 4);
        assert!(c.reads > 0 && c.writes > 0);
    }

    #[test]
    fn transpose_reads_cross_bands() {
        // Thread 0's step-1 reads must touch words outside its own band.
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        let n = 16u64;
        let own_band_end = (n / 4) * n * CPLX; // thread 0's src words
        let crosses = w
            .thread(cord_trace::types::ThreadId(0))
            .iter()
            .filter_map(|op| match op {
                cord_trace::op::Op::Read(a) => Some(a.byte() / 4),
                _ => None,
            })
            .any(|w| w >= own_band_end && w < n * n * CPLX);
        assert!(crosses, "transpose must read other threads' rows");
    }

    #[test]
    fn twiddle_table_is_read_shared_never_written() {
        let p = KernelParams {
            threads: 2,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        let n = 16u64;
        // Roots live right after the two matrices.
        let roots_start = 2 * n * n * CPLX * 4; // byte offset (line-aligned regions are contiguous here)
        let writes_roots = w
            .threads()
            .iter()
            .flat_map(|t| t.iter())
            .any(|op| matches!(op, cord_trace::op::Op::Write(a) if a.byte() >= roots_start));
        assert!(!writes_roots, "the twiddle table must be read-only");
    }
}
