//! `fmm` — adaptive fast multipole method (paper input: `2048`).
//!
//! Tree passes separated by barriers: an upward pass over owned cells
//! (private multipole accumulation), a translation phase that reads
//! remote cells' expansions and accumulates into owned interaction lists
//! under per-cell locks, and a downward pass writing owned cells and
//! bodies. Lock traffic is lighter than barnes but the read sharing in
//! the translation phase is heavy.

use crate::common::{sample_indices, KernelParams};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

const CELL_WORDS: u64 = 8; // multipole + local expansion terms
const CELL_LOCKS: u32 = 16;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let cells = 64 * p.scale;
    let bodies = cells * 2;
    let mut b = WorkloadBuilder::new("fmm", p.threads);
    let cell_arr = b.alloc_line_aligned(cells * CELL_WORDS);
    let body_arr = b.alloc_line_aligned(bodies * 4);
    let locks = b.alloc_locks(CELL_LOCKS);
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0xF33);

    let translations: Vec<Vec<u64>> = (0..cells)
        .map(|_| sample_indices(&mut rng, 6, cells))
        .collect();

    for t in 0..p.threads {
        // Ownership is cell-based; a cell's two bodies belong to the
        // cell's owner, so the unlocked upward accumulation never
        // crosses threads regardless of thread count.
        let own_cells = p.chunk(cells, t);
        let tb = &mut b.thread_mut(t);

        // Upward pass: accumulate owned bodies into owned cells.
        for cell in own_cells.clone() {
            for i in 0..2 {
                let body = cell * 2 + i;
                tb.read(body_arr.word(body * 4));
                tb.compute(12);
                tb.update(cell_arr.word(cell * CELL_WORDS));
            }
        }
        tb.compute(200);
        tb.barrier(barrier);

        // Translation: read remote expansions, locked accumulation into
        // owned cells' local expansions.
        for cell in own_cells.clone() {
            for &src in &translations[cell as usize] {
                tb.read(cell_arr.word(src * CELL_WORDS));
                tb.read(cell_arr.word(src * CELL_WORDS + 1));
            }
            let lock = locks[(cell % u64::from(CELL_LOCKS)) as usize];
            tb.lock(lock);
            tb.update(cell_arr.word(cell * CELL_WORDS + 4));
            tb.unlock(lock);
            tb.compute(64);
        }
        tb.barrier(barrier);

        // Downward pass: evaluate local expansions at owned bodies.
        for cell in own_cells {
            for i in 0..2 {
                let body = cell * 2 + i;
                tb.read(cell_arr.word(cell * CELL_WORDS + 4));
                tb.compute(12);
                tb.write(body_arr.word(body * 4 + 2));
            }
        }
        tb.barrier(barrier);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_pass_structure() {
        let p = KernelParams {
            threads: 4,
            seed: 5,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.locks, 64); // one per owned cell
        assert_eq!(c.barriers, 3 * 4);
        // Translation reads dominate.
        assert!(c.reads > c.writes);
    }
}
