//! `lu` — blocked dense LU factorization (paper input: `512x512`).
//!
//! A G×G grid of B×B-word blocks with 2-D scatter ownership. Each
//! elimination step factors the diagonal block, then the perimeter
//! blocks (reading the diagonal), then the interior (reading its
//! perimeter pair), with a barrier after each sub-phase — LU's
//! signature coarse-grain barrier pattern.

use crate::common::KernelParams;
use cord_trace::builder::{ThreadBuilder, WorkloadBuilder};
use cord_trace::program::Workload;
use cord_trace::types::WordRange;

const GRID: u64 = 4;

struct Matrix {
    blocks: WordRange,
    block_words: u64,
}

impl Matrix {
    fn block(&self, i: u64, j: u64) -> u64 {
        (i * GRID + j) * self.block_words
    }

    fn read_block(&self, tb: &mut ThreadBuilder<'_>, i: u64, j: u64) {
        let base = self.block(i, j);
        for w in 0..self.block_words {
            tb.read(self.blocks.word(base + w));
        }
        // Dense factorization kernels run O(B^3) arithmetic over O(B^2)
        // words; keep the trace's compute:access ratio realistic.
        tb.compute(6 * self.block_words as u32);
    }

    fn update_block(&self, tb: &mut ThreadBuilder<'_>, i: u64, j: u64) {
        let base = self.block(i, j);
        for w in 0..self.block_words {
            tb.read(self.blocks.word(base + w));
            tb.compute(24);
            tb.write(self.blocks.word(base + w));
        }
    }
}

fn owner(p: &KernelParams, i: u64, j: u64) -> usize {
    ((i * GRID + j) % p.threads as u64) as usize
}

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let block_dim = 4 * p.scale.isqrt().max(1);
    let block_words = block_dim * block_dim;
    let mut b = WorkloadBuilder::new("lu", p.threads);
    let blocks = b.alloc_line_aligned(GRID * GRID * block_words);
    let m = Matrix {
        blocks,
        block_words,
    };
    let barrier = b.alloc_barrier();

    for k in 0..GRID {
        // Diagonal factorization by its owner.
        for t in 0..p.threads {
            let tb = &mut b.thread_mut(t);
            if owner(&p, k, k) == t {
                m.update_block(tb, k, k);
                tb.compute(2 * block_words as u32);
            }
            tb.barrier(barrier);
        }
        // Perimeter: row k and column k blocks read the diagonal.
        for t in 0..p.threads {
            let tb = &mut b.thread_mut(t);
            for x in k + 1..GRID {
                if owner(&p, k, x) == t {
                    m.read_block(tb, k, k);
                    m.update_block(tb, k, x);
                }
                if owner(&p, x, k) == t {
                    m.read_block(tb, k, k);
                    m.update_block(tb, x, k);
                }
            }
            tb.compute(block_words as u32);
            tb.barrier(barrier);
        }
        // Interior updates read their perimeter pair.
        for t in 0..p.threads {
            let tb = &mut b.thread_mut(t);
            for i in k + 1..GRID {
                for j in k + 1..GRID {
                    if owner(&p, i, j) == t {
                        m.read_block(tb, i, k);
                        m.read_block(tb, k, j);
                        m.update_block(tb, i, j);
                    }
                }
            }
            tb.compute(block_words as u32);
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_barrier_phased() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.locks, 0);
        // 3 barriers per step x GRID steps x 4 threads.
        assert_eq!(c.barriers, 3 * GRID * 4);
    }

    #[test]
    fn later_steps_shrink_work() {
        // The interior shrinks as k grows; total ops stay bounded.
        let p = KernelParams {
            threads: 2,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        assert!(w.total_ops() > 500);
    }
}
