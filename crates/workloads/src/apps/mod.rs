//! One module per Table-1 application.

pub mod barnes;
pub mod cholesky;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod ocean;
pub mod radiosity;
pub mod radix;
pub mod raytrace;
pub mod volrend;
pub mod water_n2;
pub mod water_sp;
