//! One module per Table-1 application, plus the lock-free family
//! (post-paper sync vocabulary: CAS loops, fetch-add, exchange).

pub mod barnes;
pub mod cholesky;
pub mod fa_counter;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod ms_queue;
pub mod ocean;
pub mod radiosity;
pub mod radix;
pub mod raytrace;
pub mod seqlock;
pub mod treiber_stack;
pub mod volrend;
pub mod water_n2;
pub mod water_sp;
