//! `ms-queue` — Michael-Scott two-lock-free FIFO: CAS-linked nodes,
//! CAS-swung head/tail.
//!
//! Enqueuers write a node's payload, link it with a CAS on the node's
//! `next` slot, then swing `tail` with a second CAS. Dequeuers re-CAS
//! the dequeued node's link (the acquire load of `next`, modeled as a
//! CAS on the same word), advance `head` with a CAS, and read the
//! payload. The per-item happens-before edge runs through the link
//! word: the enqueuer's link commit covers its payload writes and the
//! dequeuer's link join picks them up — `head`/`tail` only order the
//! queue ends among their own contenders. The payload reads sit
//! between the link acquire and the head swing (as in the real
//! algorithm, where the value is read before the CAS that may hand
//! the node to another thread), so removing a dequeuer's first link
//! CAS leaves its clock at zero across the reads — exactly where a
//! scalar-clock detector must see the payload race.
//!
//! Removing either side's link CAS (injection) severs that edge and
//! leaves the payload transfer racy; removing a `head`/`tail` CAS is
//! harmless, which is exactly the asymmetry a detector must resolve.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

/// Payload words per queue node.
const PAYLOAD_WORDS: u64 = 4;
/// Items each enqueuer produces, multiplied by the scale factor.
const ITEMS_PER_ENQUEUER: u64 = 2;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let enqueuers = (p.threads / 2).max(1);
    let dequeuers = p.threads - enqueuers;
    let items_per = ITEMS_PER_ENQUEUER * p.scale;
    let total = enqueuers as u64 * items_per;

    let mut b = WorkloadBuilder::new("ms-queue", p.threads);
    let head = b.alloc_atomic();
    let tail = b.alloc_atomic();
    let links = b.alloc_atomics(total as u32);
    // One cache line per node, as real implementations pad: packed
    // nodes would false-share, and a later enqueuer's invalidation
    // folds the earlier payload stamps into the memory timestamps —
    // where a sibling-served fill never looks.
    let payload: Vec<_> = (0..total)
        .map(|_| b.alloc_line_aligned(PAYLOAD_WORDS))
        .collect();

    for t in 0..enqueuers {
        let tb = &mut b.thread_mut(t);
        tb.compute(11 * t as u32 + 1);
        for k in 0..items_per {
            let item = t as u64 * items_per + k;
            for w in 0..PAYLOAD_WORDS {
                tb.write(payload[item as usize].word(w));
            }
            // Link the node (covers the payload), then swing the tail.
            tb.cas_loop(links[item as usize]);
            tb.cas_loop(tail);
        }
    }

    // Dequeuers split the items; when single-threaded (or no second
    // half) the enqueuer threads drain their own items in order.
    let drain = |b: &mut WorkloadBuilder, thread: usize, items: std::ops::Range<u64>| {
        let tb = &mut b.thread_mut(thread);
        tb.compute(60_000 * p.scale as u32);
        for item in items {
            // As in the real algorithm, the value is read before the
            // head swing (after the CAS another dequeuer may own the
            // node). The link join must therefore cover the reads on
            // its own — and its removal is detectable before `head`
            // jumps the dequeuer's clock.
            tb.cas_loop(links[item as usize]);
            for w in 0..PAYLOAD_WORDS {
                tb.read(payload[item as usize].word(w));
            }
            tb.cas_loop(head);
        }
    };
    if dequeuers == 0 {
        drain(&mut b, 0, 0..total);
    } else {
        let base = total / dequeuers as u64;
        let rem = total % dequeuers as u64;
        let mut start = 0;
        for d in 0..dequeuers {
            let len = base + u64::from((d as u64) < rem);
            drain(&mut b, enqueuers + d, start..start + len);
            start += len;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_is_linked_swung_and_drained() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        let total = 2 * ITEMS_PER_ENQUEUER; // 2 enqueuers
                                            // Enqueue: link + tail per item; dequeue: head + link per item.
        assert_eq!(c.atomics, 4 * total);
        assert_eq!(c.writes, total * PAYLOAD_WORDS);
        assert_eq!(c.reads, total * PAYLOAD_WORDS);
    }

    #[test]
    fn odd_thread_counts_partition_items() {
        for threads in [1, 2, 3, 5] {
            let p = KernelParams {
                threads,
                seed: 1,
                scale: 1,
            };
            build(p).validate().unwrap();
        }
    }
}
