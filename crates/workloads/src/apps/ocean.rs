//! `ocean` — ocean current simulation with a multigrid solver (paper
//! input: `130x130`).
//!
//! Each timestep runs a W-ish multigrid cycle like Splash-2's ocean:
//! red/black relaxation sweeps on the fine grid (5-point stencil whose
//! up/down reads cross the neighbouring thread's row band), *restriction*
//! of the residual onto a half-resolution coarse grid, relaxation there,
//! and *prolongation* back onto the fine grid — plus a lock-protected
//! global error reduction and a barrier after every phase.

use crate::common::{locked_accumulate, KernelParams};
use cord_trace::builder::{ThreadBuilder, WorkloadBuilder};
use cord_trace::program::Workload;
use cord_trace::types::WordRange;

const TIMESTEPS: u64 = 2;

fn cell(g: &WordRange, cols: u64, r: u64, c: u64) -> cord_trace::types::Addr {
    g.word(r * cols + c)
}

/// One red/black relaxation sweep over the owned rows of `grid`
/// (dimension `dim`), reading `from` with the 5-point stencil.
fn relax(
    tb: &mut ThreadBuilder<'_>,
    from: &WordRange,
    to: &WordRange,
    dim: u64,
    rows: std::ops::Range<u64>,
) {
    for r in rows {
        for c in 0..dim {
            if r > 0 {
                tb.read(cell(from, dim, r - 1, c));
            }
            tb.read(cell(from, dim, r, c));
            if r + 1 < dim {
                tb.read(cell(from, dim, r + 1, c));
            }
            tb.compute(5);
            tb.write(cell(to, dim, r, c));
        }
        tb.compute(dim as u32);
    }
}

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let dim = 16 * p.scale.isqrt().max(1);
    let coarse_dim = dim / 2;
    let mut b = WorkloadBuilder::new("ocean", p.threads);
    let grid_a = b.alloc_line_aligned(dim * dim);
    let grid_b = b.alloc_line_aligned(dim * dim);
    let coarse = b.alloc_line_aligned(coarse_dim * coarse_dim);
    // Double-buffered: the coarse relaxation reads `coarse` and writes
    // `coarse_out`, so boundary reads never race with neighbour writes.
    let coarse_out = b.alloc_line_aligned(coarse_dim * coarse_dim);
    let err = b.alloc_line_aligned(1);
    let err_lock = b.alloc_lock();
    let barrier = b.alloc_barrier();

    for t in 0..p.threads {
        let rows = p.chunk(dim, t);
        let coarse_rows = p.chunk(coarse_dim, t);
        let tb = &mut b.thread_mut(t);
        for step in 0..TIMESTEPS {
            let (fine_from, fine_to) = if step % 2 == 0 {
                (&grid_a, &grid_b)
            } else {
                (&grid_b, &grid_a)
            };
            // Fine-grid relaxation.
            relax(tb, fine_from, fine_to, dim, rows.clone());
            locked_accumulate(tb, err_lock, &err, 0);
            tb.barrier(barrier);
            // Restriction: average 2x2 fine cells into one coarse cell.
            for r in coarse_rows.clone() {
                for c in 0..coarse_dim {
                    tb.read(cell(fine_to, dim, 2 * r, 2 * c));
                    tb.read(cell(fine_to, dim, 2 * r + 1, 2 * c));
                    tb.read(cell(fine_to, dim, 2 * r, 2 * c + 1));
                    tb.read(cell(fine_to, dim, 2 * r + 1, 2 * c + 1));
                    tb.compute(4);
                    tb.write(cell(&coarse, coarse_dim, r, c));
                }
            }
            tb.barrier(barrier);
            // Coarse-grid relaxation: read `coarse`, write own rows of
            // `coarse_out` (Jacobi, double-buffered).
            relax(tb, &coarse, &coarse_out, coarse_dim, coarse_rows.clone());
            tb.barrier(barrier);
            // Prolongation: correct the owned fine rows from the coarse
            // solution (reads cross coarse bands at boundaries).
            for r in rows.clone() {
                let cr = (r / 2).min(coarse_dim - 1);
                for c in 0..dim {
                    let cc = (c / 2).min(coarse_dim - 1);
                    tb.read(cell(&coarse_out, coarse_dim, cr, cc));
                    tb.compute(2);
                    tb.write(cell(fine_to, dim, r, c));
                }
            }
            locked_accumulate(tb, err_lock, &err, 0);
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multigrid_cycle_structure() {
        let p = KernelParams {
            threads: 4,
            seed: 3,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // Two locked reductions per timestep per thread.
        assert_eq!(c.locks, 2 * TIMESTEPS * 4);
        // Four barrier phases per timestep.
        assert_eq!(c.barriers, 4 * TIMESTEPS * 4);
        assert!(c.reads > c.writes, "stencils read more than they write");
    }

    #[test]
    fn boundary_rows_are_shared() {
        let p = KernelParams {
            threads: 2,
            seed: 3,
            scale: 1,
        };
        let w = build(p);
        let dim = 16u64;
        // Thread 0 owns rows 0..8; its fine stencil must read row 8
        // (thread 1's first row) of grid A.
        let row8_words: Vec<u64> = (0..dim).map(|c| 8 * dim + c).collect();
        let reads_row8 = w
            .thread(cord_trace::types::ThreadId(0))
            .iter()
            .filter_map(|op| match op {
                cord_trace::op::Op::Read(a) => Some(a.byte() / 4),
                _ => None,
            })
            .any(|word| row8_words.contains(&word));
        assert!(reads_row8);
    }

    #[test]
    fn restriction_feeds_the_coarse_grid() {
        let p = KernelParams {
            threads: 2,
            seed: 3,
            scale: 1,
        };
        let w = build(p);
        // The coarse grid starts after the two fine grids.
        let dim = 16u64;
        let coarse_start_word = 2 * dim * dim;
        let writes_coarse = w.threads().iter().flat_map(|t| t.iter()).any(|op| {
            matches!(op, cord_trace::op::Op::Write(a)
                if a.byte() / 4 >= coarse_start_word
                && a.byte() / 4 < coarse_start_word + (dim / 2) * (dim / 2))
        });
        assert!(writes_coarse, "the coarse grid must be written");
    }
}
