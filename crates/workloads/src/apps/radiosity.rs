//! `radiosity` — hierarchical radiosity (paper input: `-test`).
//!
//! The most dynamic Splash-2 app: per-thread distributed task queues
//! with periodic stealing from the neighbour's queue, and per-patch
//! locks around energy-transfer updates to shared patches. Queue and
//! patch locks dominate the synchronization profile; there is a single
//! final barrier.

use crate::common::{sample_indices, KernelParams, TaskQueue};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

const PATCH_WORDS: u64 = 4;
const PATCH_LOCKS: u32 = 16;
/// Every Nth task is taken from the neighbour's queue (work stealing).
const STEAL_PERIOD: u64 = 5;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let tasks_per_thread = 48 * p.scale;
    let patches = 64 * p.scale;
    let mut b = WorkloadBuilder::new("radiosity", p.threads);
    let patch_arr = b.alloc_line_aligned(patches * PATCH_WORDS);
    let queues: Vec<TaskQueue> = (0..p.threads).map(|_| TaskQueue::alloc(&mut b)).collect();
    let locks = b.alloc_locks(PATCH_LOCKS);
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0x4AD);

    // Each task transfers energy between a source and destination patch.
    let total_tasks = tasks_per_thread * p.threads as u64;
    let pairs: Vec<(u64, u64)> = (0..total_tasks)
        .map(|_| {
            let s = sample_indices(&mut rng, 2, patches);
            (s[0], s[1])
        })
        .collect();

    for t in 0..p.threads {
        let tb = &mut b.thread_mut(t);
        for i in 0..tasks_per_thread {
            // Dequeue — mostly own queue, sometimes the neighbour's.
            let q = if i % STEAL_PERIOD == STEAL_PERIOD - 1 && p.threads > 1 {
                &queues[(t + 1) % p.threads]
            } else {
                &queues[t]
            };
            q.take(tb);
            // Process: read the source patch under its lock (others may
            // be updating it), then a locked update of the destination.
            // The locks are taken sequentially, never nested, so lock
            // ordering cannot deadlock.
            let (src, dst) = pairs[(t as u64 * tasks_per_thread + i) as usize];
            let src_lock = locks[(src % u64::from(PATCH_LOCKS)) as usize];
            tb.lock(src_lock);
            for w in 0..PATCH_WORDS {
                tb.read(patch_arr.word(src * PATCH_WORDS + w));
            }
            tb.unlock(src_lock);
            tb.compute(48);
            let lock = locks[(dst % u64::from(PATCH_LOCKS)) as usize];
            tb.lock(lock);
            tb.update(patch_arr.word(dst * PATCH_WORDS));
            tb.update(patch_arr.word(dst * PATCH_WORDS + 1));
            tb.unlock(lock);
        }
        tb.barrier(barrier);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_and_patch_locks_dominate() {
        let p = KernelParams {
            threads: 4,
            seed: 6,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // 3 lock acquisitions per task (queue + source + destination).
        assert_eq!(c.locks, 3 * 48 * 4);
        assert_eq!(c.barriers, 4);
    }

    #[test]
    fn stealing_touches_neighbour_queue() {
        let p = KernelParams {
            threads: 2,
            seed: 6,
            scale: 1,
        };
        let w = build(p);
        // Thread 0 must lock thread 1's queue lock (LockId 1) at least
        // once. Queue locks are allocated first: ids 0..threads.
        let uses_neighbour = w
            .thread(cord_trace::types::ThreadId(0))
            .iter()
            .any(|op| matches!(op, cord_trace::op::Op::Lock(l) if l.0 == 1));
        assert!(uses_neighbour);
    }
}
