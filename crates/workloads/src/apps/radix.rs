//! `radix` — parallel radix sort (paper input: `256K keys`).
//!
//! Per digit pass: local histogram over the thread's key chunk, a
//! lock-protected accumulation into the shared global histogram, a
//! prefix computed by thread 0, and the permutation phase whose
//! scattered writes spray across the whole destination array (the
//! all-to-all data movement radix is famous for). Barriers separate the
//! phases; one lock guards the global histogram.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use rand::Rng;

const BUCKETS: u64 = 16;
const PASSES: u64 = 2;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let keys = 512 * p.scale;
    let mut b = WorkloadBuilder::new("radix", p.threads);
    let src = b.alloc_line_aligned(keys);
    let dst = b.alloc_line_aligned(keys);
    let global_hist = b.alloc_line_aligned(BUCKETS);
    let local_hist: Vec<_> = (0..p.threads)
        .map(|_| b.alloc_line_aligned(BUCKETS))
        .collect();
    let hist_lock = b.alloc_lock();
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0xAD1);

    // Pre-draw the scatter destinations. The real sort's destinations
    // come from the prefix sums and are *disjoint*; a seeded permutation
    // per pass preserves that (colliding writes would be genuine data
    // races in a race-free program).
    let scatter: Vec<Vec<u64>> = (0..PASSES)
        .map(|_| {
            let mut perm: Vec<u64> = (0..keys).collect();
            for i in (1..perm.len()).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            perm
        })
        .collect();

    #[allow(clippy::needless_range_loop)] // t indexes threads and their histograms
    for t in 0..p.threads {
        let chunk = p.chunk(keys, t);
        let tb = &mut b.thread_mut(t);
        for pass in 0..PASSES {
            let (from, to) = if pass % 2 == 0 {
                (&src, &dst)
            } else {
                (&dst, &src)
            };
            // Local histogram.
            for k in chunk.clone() {
                tb.read(from.word(k));
                tb.compute(3);
                tb.update(local_hist[t].word(k % BUCKETS));
            }
            tb.compute(64);
            tb.barrier(barrier);
            // Accumulate into the shared histogram under the lock.
            tb.lock(hist_lock);
            for bkt in 0..BUCKETS {
                tb.read(local_hist[t].word(bkt));
                tb.update(global_hist.word(bkt));
            }
            tb.unlock(hist_lock);
            tb.barrier(barrier);
            // Thread 0 computes the prefix sums.
            if t == 0 {
                for bkt in 0..BUCKETS {
                    tb.update(global_hist.word(bkt));
                }
            }
            tb.barrier(barrier);
            // Permute: scattered writes across the destination.
            for k in chunk.clone() {
                tb.read(from.word(k));
                tb.compute(3);
                tb.write(to.word(scatter[pass as usize][k as usize]));
            }
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_and_sync_mix() {
        let p = KernelParams {
            threads: 4,
            seed: 2,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.locks as usize, 4 * PASSES as usize);
        assert_eq!(c.barriers, 4 * PASSES * 4);
        // The permute phase writes every key once per pass.
        assert!(c.writes >= 512 * PASSES);
    }
}
