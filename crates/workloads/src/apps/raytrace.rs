//! `raytrace` — parallel ray tracer (paper input: `teapot`).
//!
//! A single global tile queue feeds all threads; rendering a pixel
//! traces a ray through the read-shared BSP tree — a root-to-leaf
//! descent whose upper levels are touched by every ray (hot, heavily
//! read-shared lines) and whose leaves point at contiguous primitive
//! blocks — then writes the thread's own framebuffer region. The only
//! lock is the queue's; contention on it is the app's main sync cost.

use crate::common::{KernelParams, TaskQueue};
use cord_trace::builder::{ThreadBuilder, WorkloadBuilder};
use cord_trace::program::Workload;
use cord_trace::types::WordRange;
use rand::rngs::SmallRng;
use rand::Rng;

const TILE_PIXELS: u64 = 16;
/// Levels of the BSP descent per ray.
const BSP_DEPTH: u64 = 5;
/// Words per BSP node (plane, children, bbox).
const NODE_WORDS: u64 = 4;
/// Words per primitive block at a leaf.
const PRIM_WORDS: u64 = 8;

/// One ray: descend the BSP from the root (node 0) taking seeded
/// branches, then shade against the leaf's primitive block.
fn trace_ray(tb: &mut ThreadBuilder<'_>, bsp: &WordRange, prims: &WordRange, rng: &mut SmallRng) {
    let mut node = 0u64;
    let node_count = bsp.len() / NODE_WORDS;
    for _level in 0..BSP_DEPTH {
        tb.read(bsp.word(node * NODE_WORDS));
        tb.read(bsp.word(node * NODE_WORDS + 1));
        tb.compute(6);
        // Children of node n are 2n+1 / 2n+2 (wrapped).
        node = (2 * node + 1 + u64::from(rng.gen_bool(0.5))) % node_count;
    }
    // Shade against the leaf's primitive block (contiguous reads).
    let prim_blocks = prims.len() / PRIM_WORDS;
    let block = node % prim_blocks;
    for w in 0..PRIM_WORDS {
        tb.read(prims.word(block * PRIM_WORDS + w));
    }
    tb.compute(40);
}

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let tiles_per_thread = 16 * p.scale;
    let bsp_nodes = 64 * p.scale;
    let prim_words = 512 * p.scale;
    let mut b = WorkloadBuilder::new("raytrace", p.threads);
    let bsp = b.alloc_line_aligned(bsp_nodes * NODE_WORDS);
    let prims = b.alloc_line_aligned(prim_words);
    let framebuf = b.alloc_line_aligned(tiles_per_thread * p.threads as u64 * TILE_PIXELS);
    let queue = TaskQueue::alloc(&mut b);
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0x4A1);

    for t in 0..p.threads {
        let tb = &mut b.thread_mut(t);
        for tile in 0..tiles_per_thread {
            queue.take(tb);
            let tile_base = (t as u64 * tiles_per_thread + tile) * TILE_PIXELS;
            for px in 0..TILE_PIXELS {
                trace_ray(tb, &bsp, &prims, &mut rng);
                tb.write(framebuf.word(tile_base + px));
            }
        }
        tb.barrier(barrier);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_driven_read_shared_scene() {
        let p = KernelParams {
            threads: 4,
            seed: 7,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.locks, 16 * 4); // one queue take per tile
                                     // Scene reads dominate framebuffer writes heavily.
        assert!(c.reads > 3 * c.writes);
        assert_eq!(w.layout().user_locks(), 1);
    }

    #[test]
    fn bsp_root_is_read_by_every_thread() {
        // The root node's words are the hottest read-shared lines.
        let p = KernelParams {
            threads: 4,
            seed: 7,
            scale: 1,
        };
        let w = build(p);
        for t in 0..4 {
            let reads_root = w
                .thread(cord_trace::types::ThreadId(t))
                .iter()
                .any(|op| matches!(op, cord_trace::op::Op::Read(a) if a.byte() == 0));
            assert!(reads_root, "thread {t} never visits the BSP root");
        }
    }

    #[test]
    fn scene_is_never_written() {
        let p = KernelParams {
            threads: 2,
            seed: 7,
            scale: 1,
        };
        let w = build(p);
        // BSP + primitives occupy the first (64*4 + 512) words.
        let scene_end = (64 * NODE_WORDS + 512) * 4;
        let writes_scene = w
            .threads()
            .iter()
            .flat_map(|t| t.iter())
            .any(|op| matches!(op, cord_trace::op::Op::Write(a) if a.byte() < scene_end));
        assert!(!writes_scene, "the scene must be read-only");
    }
}
