//! `seqlock` — sequence-locked snapshot: a writer briefly "opens" the
//! sequence word, updates the shared block, and "closes" it; readers
//! bracket their snapshot with acquire/validate RMWs on the same word.
//!
//! Each writer round is `cas(seq); writes; cas(seq)` — the real
//! seqlock's odd/even increments. The opening CAS *joins* the readers'
//! latest validates (so this round's writes happen-after every earlier
//! snapshot) and the closing CAS *publishes* the writes (so the next
//! snapshots happen-after them). Reader rounds are
//! `cas(seq); reads; cas(seq)` — acquire then validate — paced into
//! the gap between writer rounds by generous compute delays, so the
//! race-free mode holds on every backend and core count.
//!
//! Injection tears the bracket: removing a writer's opening CAS races
//! its writes against the previous snapshots; removing its closing CAS
//! (or a reader's acquire) races the snapshot against the writes it
//! reads — the torn-read seqlock bug detectors are famous for flagging.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

/// Words in the snapshotted block.
const DATA_WORDS: u64 = 12;
/// Cycle gap between rounds — large against memory latency and jitter
/// so reader rounds always land between writer rounds.
const GAP: u32 = 100_000;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let rounds = 2 + p.scale.min(8);
    let mut b = WorkloadBuilder::new("seqlock", p.threads);
    let seq = b.alloc_atomic();
    let data = b.alloc_line_aligned(DATA_WORDS);

    {
        let tb = &mut b.thread_mut(0);
        for _ in 0..rounds {
            tb.cas_loop(seq); // open: join every published snapshot
            for w in 0..DATA_WORDS {
                tb.write(data.word(w));
            }
            tb.cas_loop(seq); // close: publish this round's writes
            tb.compute(GAP);
        }
    }

    for t in 1..p.threads {
        let tb = &mut b.thread_mut(t);
        // Start mid-gap, staggered per reader, so every snapshot falls
        // strictly between two writer rounds.
        tb.compute(GAP / 2 + 31 * t as u32);
        for _ in 0..rounds {
            tb.cas_loop(seq); // acquire: happens-after the last close
            for w in 0..DATA_WORDS {
                tb.read(data.word(w));
            }
            tb.cas_loop(seq); // validate: publish the snapshot
            tb.compute(GAP);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_are_paired() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        let rounds = 3;
        // Writer + 3 readers each bracket every round with two RMWs.
        assert_eq!(c.atomics, 4 * 2 * rounds);
        assert_eq!(c.writes, rounds * DATA_WORDS);
        assert_eq!(c.reads, 3 * rounds * DATA_WORDS);
    }

    #[test]
    fn writer_only_run_validates() {
        let p = KernelParams {
            threads: 1,
            seed: 1,
            scale: 1,
        };
        build(p).validate().unwrap();
    }
}
