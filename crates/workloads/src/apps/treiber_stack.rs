//! `treiber-stack` — lock-free LIFO: CAS-loop pushes, CAS pop-all.
//!
//! Producers each build one node (a payload block written before the
//! push) and publish it with a single CAS on `top`; the consumer grabs
//! the whole chain with one CAS (the classic "pop-all" idiom) and
//! walks every node. Race-free by construction: each producer's
//! payload writes precede its CAS commit, the CAS chain on `top` is
//! transitively ordered, and the consumer's pop CAS joins the last
//! committer after a delay long enough that every push has committed.
//!
//! The injectable variant is the §3.4 analogue for lock-free code:
//! removing any CAS (the whole RMW — acquire-read and release-write)
//! leaves payload transfers unordered, a guaranteed true race. The two
//! sides differ for a scalar-clock detector, though: removing the
//! consumer's pop CAS leaves its clock untouched, so every payload
//! read races detectably, while removing one producer's push still
//! lets the surviving pushes jump the consumer's clock `+D` past the
//! orphaned node's write stamps — CORD's documented false-negative
//! mode for overlapping synchronization on one variable.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

/// Payload words per node, multiplied by the scale factor.
const NODE_WORDS: u64 = 16;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let payload = NODE_WORDS * p.scale;
    let producers = if p.threads > 1 { p.threads - 1 } else { 1 };
    let mut b = WorkloadBuilder::new("treiber-stack", p.threads);
    let top = b.alloc_atomic();
    let nodes = b.alloc_line_aligned(producers as u64 * payload);

    for t in 0..producers {
        let tb = &mut b.thread_mut(t);
        // Small stagger keeps the pushes contended but not lockstep.
        tb.compute(7 * t as u32 + 1);
        let base = t as u64 * payload;
        for i in 0..payload {
            tb.write(nodes.word(base + i));
        }
        // The push: this commit's sync write covers every payload
        // write above, and chains on the previous push's commit.
        tb.cas_loop(top);
    }

    // The consumer (the last thread; the sole thread when single
    // threaded) waits out every push, then takes the whole stack.
    let tb = &mut b.thread_mut(p.threads - 1);
    tb.compute(100_000 * p.scale as u32);
    tb.cas_loop(top);
    for i in 0..producers as u64 * payload {
        tb.read(nodes.word(i));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cas_per_producer_and_one_pop() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // 3 producers push once each; the consumer pops-all once.
        assert_eq!(c.atomics, 4);
        assert_eq!(c.writes, 3 * NODE_WORDS);
        assert_eq!(c.reads, 3 * NODE_WORDS);
    }

    #[test]
    fn single_thread_degenerates_cleanly() {
        let p = KernelParams {
            threads: 1,
            seed: 1,
            scale: 1,
        };
        build(p).validate().unwrap();
    }
}
