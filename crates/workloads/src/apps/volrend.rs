//! `volrend` — shear-warp volume renderer (paper input: `head-sd2`).
//!
//! Like raytrace, a tile queue over read-shared data, but the per-pixel
//! work is a ray *march*: an octree descent to skip empty space (hot
//! shared upper levels) followed by a run of consecutive voxel samples
//! along the ray (streaming reads with strong spatial locality),
//! rendered frame by frame with a barrier between frames and a small
//! locked counter for the adaptive-sampling bookkeeping.

use crate::common::{KernelParams, TaskQueue};
use cord_trace::builder::{ThreadBuilder, WorkloadBuilder};
use cord_trace::program::Workload;
use cord_trace::types::WordRange;
use rand::rngs::SmallRng;
use rand::Rng;

const FRAMES: u64 = 2;
const TILE_PIXELS: u64 = 8;
/// Octree levels descended per ray.
const OCTREE_DEPTH: u64 = 3;
const NODE_WORDS: u64 = 2;
/// Consecutive voxels sampled along the ray.
const MARCH_STEPS: u64 = 6;

fn march_ray(
    tb: &mut ThreadBuilder<'_>,
    octree: &WordRange,
    volume: &WordRange,
    rng: &mut SmallRng,
) {
    // Empty-space skipping: descend the octree from the root.
    let mut node = 0u64;
    let node_count = octree.len() / NODE_WORDS;
    for _ in 0..OCTREE_DEPTH {
        tb.read(octree.word(node * NODE_WORDS));
        tb.compute(4);
        node = (8 * node + 1 + rng.gen_range(0..8u64)) % node_count;
    }
    // March: consecutive voxels starting where the ray enters.
    let start = rng.gen_range(0..volume.len().saturating_sub(MARCH_STEPS));
    for s in 0..MARCH_STEPS {
        tb.read(volume.word(start + s));
        tb.compute(3); // classify + composite
    }
}

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let tiles_per_thread = 8 * p.scale;
    let volume_words = 2048 * p.scale;
    let octree_nodes = 64 * p.scale;
    let mut b = WorkloadBuilder::new("volrend", p.threads);
    let octree = b.alloc_line_aligned(octree_nodes * NODE_WORDS);
    let volume = b.alloc_line_aligned(volume_words);
    let image = b.alloc_line_aligned(tiles_per_thread * p.threads as u64 * TILE_PIXELS);
    let queue = TaskQueue::alloc(&mut b);
    let counter = b.alloc_line_aligned(1);
    let counter_lock = b.alloc_lock();
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0x701);

    for t in 0..p.threads {
        let tb = &mut b.thread_mut(t);
        for _frame in 0..FRAMES {
            for tile in 0..tiles_per_thread {
                queue.take(tb);
                let tile_base = (t as u64 * tiles_per_thread + tile) * TILE_PIXELS;
                for px in 0..TILE_PIXELS {
                    march_ray(tb, &octree, &volume, &mut rng);
                    tb.write(image.word(tile_base + px));
                }
            }
            // Adaptive-sampling bookkeeping.
            tb.lock(counter_lock);
            tb.update(counter.word(0));
            tb.unlock(counter_lock);
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_frame_barriers_and_queue() {
        let p = KernelParams {
            threads: 4,
            seed: 8,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        assert_eq!(c.barriers, FRAMES * 4);
        // Queue takes + per-frame counter locks.
        assert_eq!(c.locks, (8 * FRAMES + FRAMES) * 4);
        assert!(c.reads > c.writes);
    }

    #[test]
    fn ray_march_has_spatial_locality() {
        // Consecutive volume reads land on consecutive words far more
        // often than a uniform sampler would produce.
        let p = KernelParams {
            threads: 1,
            seed: 8,
            scale: 1,
        };
        let w = build(p);
        let reads: Vec<u64> = w
            .thread(cord_trace::types::ThreadId(0))
            .iter()
            .filter_map(|op| match op {
                cord_trace::op::Op::Read(a) => Some(a.byte() / 4),
                _ => None,
            })
            .collect();
        let consecutive = reads.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            consecutive * 2 > reads.len(),
            "marching must make most reads consecutive ({consecutive}/{})",
            reads.len()
        );
    }
}
