//! `water-n2` — water simulation, O(n²) pair interactions (paper input:
//! `2^16` — the exponent configures the RNG, molecule count is 512).
//!
//! Per timestep: an intra-molecule phase over owned molecules, then the
//! O(n²) inter-molecule force phase where each thread processes its
//! share of pairs, reading both molecules' positions and accumulating
//! forces into *shared* per-molecule force words under per-molecule
//! locks (hashed into a pool), then locked global potential-energy
//! accumulation, then a barrier and the position update.

use crate::common::{locked_accumulate, KernelParams};
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use rand::Rng;

const MOL_WORDS: u64 = 8; // positions, velocities, forces
const MOL_LOCKS: u32 = 32;
const TIMESTEPS: u64 = 2;
const PAIRS_PER_MOL: usize = 6;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let mols = 48 * p.scale;
    let mut b = WorkloadBuilder::new("water-n2", p.threads);
    let mol_arr = b.alloc_line_aligned(mols * MOL_WORDS);
    let energy = b.alloc_line_aligned(2);
    let locks = b.alloc_locks(MOL_LOCKS);
    let energy_lock = b.alloc_lock();
    let barrier = b.alloc_barrier();
    let mut rng = p.rng(0x3A7);

    // Pre-draw interaction partners (the n² loop samples all-pairs;
    // we keep a fixed number per molecule to bound trace size).
    let partners: Vec<Vec<u64>> = (0..mols)
        .map(|_| (0..PAIRS_PER_MOL).map(|_| rng.gen_range(0..mols)).collect())
        .collect();

    for t in 0..p.threads {
        let own = p.chunk(mols, t);
        let tb = &mut b.thread_mut(t);
        for _step in 0..TIMESTEPS {
            // Intra-molecule phase: own molecules only.
            for m in own.clone() {
                tb.update(mol_arr.word(m * MOL_WORDS));
                tb.compute(40);
            }
            tb.barrier(barrier);
            // Inter-molecule forces: read both positions, locked
            // accumulation into the partner's force words.
            for m in own.clone() {
                for &o in &partners[m as usize] {
                    tb.read(mol_arr.word(m * MOL_WORDS));
                    tb.read(mol_arr.word(o * MOL_WORDS));
                    tb.compute(56);
                    let lock = locks[(o % u64::from(MOL_LOCKS)) as usize];
                    tb.lock(lock);
                    tb.update(mol_arr.word(o * MOL_WORDS + 4));
                    tb.unlock(lock);
                }
            }
            locked_accumulate(tb, energy_lock, &energy, 0);
            tb.barrier(barrier);
            // Position update: own molecules.
            for m in own.clone() {
                tb.read(mol_arr.word(m * MOL_WORDS + 4));
                tb.write(mol_arr.word(m * MOL_WORDS));
                tb.write(mol_arr.word(m * MOL_WORDS + 1));
            }
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_locked_force_accumulation() {
        let p = KernelParams {
            threads: 4,
            seed: 9,
            scale: 1,
        };
        let w = build(p);
        w.validate().unwrap();
        let c = w.op_counts();
        // One lock per pair interaction + one energy lock per step.
        assert_eq!(c.locks, (48 * PAIRS_PER_MOL as u64 + 4) * TIMESTEPS);
        assert_eq!(c.barriers, 3 * TIMESTEPS * 4);
    }
}
