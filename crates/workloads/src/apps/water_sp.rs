//! `water-sp` — water simulation with spatial decomposition (paper
//! input: `2^16`).
//!
//! The spatial variant replaces the O(n²) pair loop with a 3-D cell
//! grid: threads own cell slabs, read neighbouring cells' molecules
//! (boundary sharing like ocean, but over linked cell lists), and only
//! boundary-cell force accumulations need locks — so water-sp
//! synchronizes far less than water-n2, as in Splash-2.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;

const CELLS_PER_SIDE: u64 = 4;
const MOLS_PER_CELL: u64 = 4;
const MOL_WORDS: u64 = 8;
const TIMESTEPS: u64 = 2;

/// Builds the kernel.
pub fn build(p: KernelParams) -> Workload {
    let side = CELLS_PER_SIDE * p.scale.isqrt().max(1);
    let cells = side * side;
    let mols = cells * MOLS_PER_CELL;
    let mut b = WorkloadBuilder::new("water-sp", p.threads);
    let mol_arr = b.alloc_line_aligned(mols * MOL_WORDS);
    let cell_locks = b.alloc_locks(side as u32);
    let barrier = b.alloc_barrier();

    let mol_of = |cell: u64, i: u64| (cell * MOLS_PER_CELL + i) * MOL_WORDS;

    for t in 0..p.threads {
        // Threads own row-slabs of the cell grid.
        let rows = p.chunk(side, t);
        let tb = &mut b.thread_mut(t);
        for _step in 0..TIMESTEPS {
            for r in rows.clone() {
                for c in 0..side {
                    let cell = r * side + c;
                    // Read own cell's molecules (positions).
                    for i in 0..MOLS_PER_CELL {
                        tb.read(mol_arr.word(mol_of(cell, i)));
                        tb.read(mol_arr.word(mol_of(cell, i) + 1));
                    }
                    // Read every molecule of the neighbour cells
                    // (up/down cross the slab boundary — the spatial
                    // method's only inter-thread sharing).
                    for (dr, dc) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                        let nr = r as i64 + dr;
                        let nc = c as i64 + dc;
                        if nr >= 0 && nr < side as i64 && nc >= 0 && nc < side as i64 {
                            let ncell = nr as u64 * side + nc as u64;
                            for i in 0..MOLS_PER_CELL {
                                tb.read(mol_arr.word(mol_of(ncell, i)));
                            }
                            tb.compute(12 * MOLS_PER_CELL as u32);
                        }
                    }
                    tb.compute(48);
                    // Force writes: own-cell molecules, lock only at
                    // slab boundaries where a neighbour also updates.
                    let boundary = r == rows.start || r + 1 == rows.end;
                    if boundary {
                        let lock = cell_locks[(r % side) as usize];
                        tb.lock(lock);
                        tb.update(mol_arr.word(mol_of(cell, 0) + 4));
                        tb.unlock(lock);
                    } else {
                        tb.update(mol_arr.word(mol_of(cell, 0) + 4));
                    }
                }
            }
            tb.barrier(barrier);
            // Position update over owned molecules.
            for r in rows.clone() {
                for c in 0..side {
                    let cell = r * side + c;
                    tb.write(mol_arr.word(mol_of(cell, 0)));
                }
            }
            tb.barrier(barrier);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_locks_than_water_n2() {
        let p = KernelParams {
            threads: 4,
            seed: 10,
            scale: 1,
        };
        let sp = build(p);
        sp.validate().unwrap();
        let n2 = crate::apps::water_n2::build(p);
        let sp_c = sp.op_counts();
        let n2_c = n2.op_counts();
        let sp_rate = sp_c.locks as f64 / (sp_c.reads + sp_c.writes).max(1) as f64;
        let n2_rate = n2_c.locks as f64 / (n2_c.reads + n2_c.writes).max(1) as f64;
        assert!(
            sp_rate < n2_rate,
            "spatial water must sync less: {sp_rate} vs {n2_rate}"
        );
    }
}
