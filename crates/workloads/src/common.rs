//! Shared building blocks for the Splash-2-analogue kernels.

use cord_trace::builder::{ThreadBuilder, WorkloadBuilder};
use cord_trace::types::{LockId, WordRange};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-kernel generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Number of worker threads.
    pub threads: usize,
    /// Deterministic seed for data-dependent-looking access patterns.
    pub seed: u64,
    /// Linear problem scale (each kernel interprets it in its own
    /// units — bodies, matrix dimension, keys…).
    pub scale: u64,
}

impl KernelParams {
    /// A deterministic RNG derived from the seed and a stream label, so
    /// each generation phase draws independent but reproducible numbers.
    pub fn rng(&self, stream: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream)
    }

    /// Contiguous chunk of `total` items owned by thread `t` (block
    /// partitioning, the Splash-2 default).
    pub fn chunk(&self, total: u64, t: usize) -> std::ops::Range<u64> {
        let p = self.threads as u64;
        let t = t as u64;
        let base = total / p;
        let rem = total % p;
        let start = t * base + t.min(rem);
        let len = base + u64::from(t < rem);
        start..start + len
    }
}

/// A centralized work queue: a head counter protected by a lock, the
/// idiom radiosity/raytrace/volrend/cholesky use for dynamic load
/// balancing. Each `take` emits `lock; read head; write head; unlock`.
///
/// The *processed* task indices are assigned round-robin at generation
/// time (our traces are static), but the queue's shared-counter accesses
/// — which is what the detectors see — are identical to a dynamic
/// queue's.
#[derive(Debug, Clone, Copy)]
pub struct TaskQueue {
    lock: LockId,
    head: WordRange,
}

impl TaskQueue {
    /// Allocates a queue (one lock + one counter word).
    pub fn alloc(b: &mut WorkloadBuilder) -> Self {
        let lock = b.alloc_lock();
        let head = b.alloc_line_aligned(1);
        TaskQueue { lock, head }
    }

    /// Emits one dequeue operation into `tb`.
    pub fn take(&self, tb: &mut ThreadBuilder<'_>) {
        tb.lock(self.lock);
        tb.update(self.head.word(0));
        tb.unlock(self.lock);
    }
}

/// Emits a read-modify-write of a shared accumulator under its lock —
/// the global-reduction idiom (ocean's error norm, water's potential
/// energy sums).
pub fn locked_accumulate(tb: &mut ThreadBuilder<'_>, lock: LockId, cell: &WordRange, word: u64) {
    tb.lock(lock);
    tb.update(cell.word(word));
    tb.unlock(lock);
}

/// Draws `count` distinct-ish indices below `bound` (sampling with
/// replacement; callers tolerate duplicates).
pub fn sample_indices(rng: &mut SmallRng, count: usize, bound: u64) -> Vec<u64> {
    (0..count).map(|_| rng.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 0,
        };
        let total = 13;
        let mut covered = 0;
        let mut expected_start = 0;
        for t in 0..4 {
            let r = p.chunk(total, t);
            assert_eq!(r.start, expected_start);
            expected_start = r.end;
            covered += r.end - r.start;
        }
        assert_eq!(covered, total);
    }

    #[test]
    fn rng_streams_are_independent_and_stable() {
        let p = KernelParams {
            threads: 2,
            seed: 7,
            scale: 0,
        };
        let a: u64 = p.rng(0).gen();
        let a2: u64 = p.rng(0).gen();
        let b: u64 = p.rng(1).gen();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn task_queue_emits_locked_counter_update() {
        let mut b = WorkloadBuilder::new("q", 1);
        let q = TaskQueue::alloc(&mut b);
        q.take(&mut b.thread_mut(0));
        let w = b.build();
        w.validate().unwrap();
        assert_eq!(w.total_ops(), 4); // lock, read, write, unlock
    }

    #[test]
    fn sample_indices_in_bounds() {
        let p = KernelParams {
            threads: 1,
            seed: 3,
            scale: 0,
        };
        let mut rng = p.rng(9);
        for i in sample_indices(&mut rng, 100, 17) {
            assert!(i < 17);
        }
    }
}
