//! A workload with a *pre-existing* data race, mirroring §3.4's
//! observation that "several Splash-2 applications already have data
//! races that are discovered by CORD. Almost all are only potential
//! portability problems, but at least one is an actual bug."
//!
//! The classic offender is the unprotected progress/flag check idiom: a
//! worker updates a shared progress counter under a lock, while a
//! monitor thread polls the counter *without* the lock (benign on
//! machines with strong coherence, a portability bug elsewhere). CORD
//! and the Ideal oracle both flag it; the lock-protected accesses stay
//! clean.

use crate::common::KernelParams;
use cord_trace::builder::WorkloadBuilder;
use cord_trace::program::Workload;
use cord_trace::types::Addr;

/// Word address of the racy progress counter in
/// [`unprotected_progress_counter`], for tests that want to check the
/// reported race points at the right variable.
pub const PROGRESS_WORD: Addr = Addr(0);

/// Builds the unprotected-progress-counter workload: `threads - 1`
/// workers bump a locked counter; the last thread polls it unlocked.
///
/// # Panics
///
/// Panics if `p.threads < 2`.
pub fn unprotected_progress_counter(p: KernelParams) -> Workload {
    assert!(p.threads >= 2, "need a worker and a monitor");
    let mut b = WorkloadBuilder::new("known-race", p.threads);
    let progress = b.alloc_line_aligned(1);
    debug_assert_eq!(progress.word(0), PROGRESS_WORD);
    let lock = b.alloc_lock();
    let work = b.alloc_line_aligned(64 * p.scale);
    let rounds = 8 * p.scale;

    for t in 0..p.threads - 1 {
        let tb = &mut b.thread_mut(t);
        for r in 0..rounds {
            tb.update(work.word((t as u64 * rounds + r) % (64 * p.scale)));
            tb.compute(120);
            // Correctly protected counter update.
            tb.lock(lock);
            tb.update(progress.word(0));
            tb.unlock(lock);
        }
    }
    // The monitor polls the counter WITHOUT taking the lock — the
    // portability bug the paper found shipping in Splash-2.
    let monitor = p.threads - 1;
    let tb = &mut b.thread_mut(monitor);
    for _ in 0..rounds {
        tb.read(progress.word(0));
        tb.compute(400);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_well_formed() {
        let p = KernelParams {
            threads: 4,
            seed: 1,
            scale: 1,
        };
        let w = unprotected_progress_counter(p);
        w.validate().unwrap();
        assert_eq!(w.name(), "known-race");
    }

    #[test]
    #[should_panic(expected = "need a worker")]
    fn single_thread_rejected() {
        let p = KernelParams {
            threads: 1,
            seed: 1,
            scale: 1,
        };
        let _ = unprotected_progress_counter(p);
    }
}
