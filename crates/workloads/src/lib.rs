//! Splash-2-analogue workload kernels (Table 1 of the paper).
//!
//! The paper evaluates on the twelve Splash-2 applications with reduced
//! input sets. Running the original binaries requires an ISA-level
//! simulator; what CORD's metrics actually depend on is (i) which
//! accesses conflict across threads, (ii) how synchronization orders
//! them, and (iii) the cache residency/reuse distance of the shared
//! data. Each kernel here reproduces its namesake's *synchronization
//! structure and sharing pattern* over deterministic per-thread access
//! streams (see DESIGN.md for the substitution argument):
//!
//! | Kernel | Sync structure |
//! |---|---|
//! | `barnes` | fine-grain per-cell locks for tree build + phase barriers |
//! | `cholesky` | task queue + per-column locks (frequent, bursty sync — the paper's worst overhead case) |
//! | `fft` | barrier-phased all-to-all transpose |
//! | `fmm` | per-cell locks + phased tree passes |
//! | `lu` | barrier-per-step blocked factorization |
//! | `ocean` | stencil with boundary sharing + barriers + locked reductions |
//! | `radiosity` | distributed task queues with stealing, per-patch locks |
//! | `radix` | per-digit histogram/prefix/permute with locks + barriers |
//! | `raytrace` | tile task queue over a read-shared scene |
//! | `volrend` | tile task queue over a read-shared volume |
//! | `water-n2` | O(n²) pair forces with per-molecule locks + barriers |
//! | `water-sp` | spatial cells, neighbour reads, fewer locks |
//!
//! Beyond Table 1, a lock-free family ([`lockfree_apps`]) exercises the
//! atomic RMW vocabulary the 2006 paper never saw:
//!
//! | Kernel | Sync structure |
//! |---|---|
//! | `treiber-stack` | CAS-loop pushes, take-all exchange pop |
//! | `ms-queue` | CAS-linked FIFO, CAS-swung head/tail |
//! | `fa-counter` | fetch-add combining counter + done flags |
//! | `seqlock` | writer open/close RMW bracket, reader acquire/validate |
//!
//! # Example
//!
//! ```
//! use cord_workloads::{kernel, AppKind, ScaleClass};
//!
//! let w = kernel(AppKind::Fft, ScaleClass::Tiny, 4, 1);
//! assert_eq!(w.num_threads(), 4);
//! w.validate().unwrap();
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod common;
pub mod known_race;

use cord_trace::program::Workload;

/// The twelve applications of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    /// Barnes-Hut N-body (tree locks + barriers).
    Barnes,
    /// Sparse Cholesky factorization (task queue, frequent sync).
    Cholesky,
    /// Six-step FFT (barrier-phased transpose).
    Fft,
    /// Fast multipole method (cell locks + phases).
    Fmm,
    /// Blocked dense LU (barrier per step).
    Lu,
    /// Ocean current simulation (stencil + barriers + reductions).
    Ocean,
    /// Hierarchical radiosity (task stealing + patch locks).
    Radiosity,
    /// Radix sort (histogram/prefix/permute).
    Radix,
    /// Ray tracer (tile queue over read-shared scene).
    Raytrace,
    /// Volume renderer (tile queue over read-shared volume).
    Volrend,
    /// Water, O(n²) pairs (molecule locks + barriers).
    WaterN2,
    /// Water, spatial decomposition.
    WaterSp,
    /// Treiber stack (CAS pushes, exchange pop-all). Lock-free family.
    TreiberStack,
    /// Michael-Scott queue (CAS-linked nodes). Lock-free family.
    MsQueue,
    /// Fetch-add combining counter + flags. Lock-free family.
    FaCounter,
    /// Seqlock snapshot (RMW brackets). Lock-free family.
    Seqlock,
}

impl AppKind {
    /// The canonical lowercase name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Barnes => "barnes",
            AppKind::Cholesky => "cholesky",
            AppKind::Fft => "fft",
            AppKind::Fmm => "fmm",
            AppKind::Lu => "lu",
            AppKind::Ocean => "ocean",
            AppKind::Radiosity => "radiosity",
            AppKind::Radix => "radix",
            AppKind::Raytrace => "raytrace",
            AppKind::Volrend => "volrend",
            AppKind::WaterN2 => "water-n2",
            AppKind::WaterSp => "water-sp",
            AppKind::TreiberStack => "treiber-stack",
            AppKind::MsQueue => "ms-queue",
            AppKind::FaCounter => "fa-counter",
            AppKind::Seqlock => "seqlock",
        }
    }

    /// The input set the paper used (Table 1); the lock-free family is
    /// post-paper, so its "input" names the workload shape instead.
    pub fn paper_input(self) -> &'static str {
        match self {
            AppKind::Barnes => "n2048",
            AppKind::Cholesky => "tk23.O",
            AppKind::Fft => "m16",
            AppKind::Fmm => "2048",
            AppKind::Lu => "512x512",
            AppKind::Ocean => "130x130",
            AppKind::Radiosity => "-test",
            AppKind::Radix => "256K keys",
            AppKind::Raytrace => "teapot",
            AppKind::Volrend => "head-sd2",
            AppKind::WaterN2 => "2^16",
            AppKind::WaterSp => "2^16",
            AppKind::TreiberStack => "1 node/producer",
            AppKind::MsQueue => "2·scale items/enq",
            AppKind::FaCounter => "8·scale adds/worker",
            AppKind::Seqlock => "scale+2 rounds",
        }
    }

    /// `true` for the lock-free (atomic RMW) family.
    pub fn is_lockfree(self) -> bool {
        matches!(
            self,
            AppKind::TreiberStack | AppKind::MsQueue | AppKind::FaCounter | AppKind::Seqlock
        )
    }
}

/// All twelve applications, in the paper's (alphabetical) figure order.
pub fn all_apps() -> [AppKind; 12] {
    [
        AppKind::Barnes,
        AppKind::Cholesky,
        AppKind::Fft,
        AppKind::Fmm,
        AppKind::Lu,
        AppKind::Ocean,
        AppKind::Radiosity,
        AppKind::Radix,
        AppKind::Raytrace,
        AppKind::Volrend,
        AppKind::WaterN2,
        AppKind::WaterSp,
    ]
}

/// The lock-free workload family (not part of the paper's Table 1).
///
/// Each kernel has a race-free-by-construction default and becomes a
/// guaranteed-true-race workload under §3.4-style injection.
pub fn lockfree_apps() -> [AppKind; 4] {
    [
        AppKind::TreiberStack,
        AppKind::MsQueue,
        AppKind::FaCounter,
        AppKind::Seqlock,
    ]
}

/// Problem-size classes. `Tiny` keeps injection sweeps fast in CI;
/// `Small` is the default for the figure harness; `Paper` approaches the
/// paper's reduced Splash-2 inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScaleClass {
    /// A few thousand operations per run.
    Tiny,
    /// Tens of thousands of operations per run.
    Small,
    /// Hundreds of thousands of operations per run.
    Paper,
}

impl ScaleClass {
    /// The linear scale factor each kernel multiplies its base size by.
    pub fn factor(self) -> u64 {
        match self {
            ScaleClass::Tiny => 1,
            ScaleClass::Small => 4,
            ScaleClass::Paper => 16,
        }
    }
}

/// Builds the named kernel at the given scale.
///
/// # Panics
///
/// Panics if `threads == 0`. The result always passes
/// [`Workload::validate`].
pub fn kernel(kind: AppKind, scale: ScaleClass, threads: usize, seed: u64) -> Workload {
    let params = common::KernelParams {
        threads,
        seed,
        scale: scale.factor(),
    };
    let w = match kind {
        AppKind::Barnes => apps::barnes::build(params),
        AppKind::Cholesky => apps::cholesky::build(params),
        AppKind::Fft => apps::fft::build(params),
        AppKind::Fmm => apps::fmm::build(params),
        AppKind::Lu => apps::lu::build(params),
        AppKind::Ocean => apps::ocean::build(params),
        AppKind::Radiosity => apps::radiosity::build(params),
        AppKind::Radix => apps::radix::build(params),
        AppKind::Raytrace => apps::raytrace::build(params),
        AppKind::Volrend => apps::volrend::build(params),
        AppKind::WaterN2 => apps::water_n2::build(params),
        AppKind::WaterSp => apps::water_sp::build(params),
        AppKind::TreiberStack => apps::treiber_stack::build(params),
        AppKind::MsQueue => apps::ms_queue::build(params),
        AppKind::FaCounter => apps::fa_counter::build(params),
        AppKind::Seqlock => apps::seqlock::build(params),
    };
    debug_assert!(w.validate().is_ok(), "{} failed validation", kind.name());
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_validates_at_every_scale() {
        for kind in all_apps() {
            for scale in [ScaleClass::Tiny, ScaleClass::Small] {
                let w = kernel(kind, scale, 4, 42);
                w.validate()
                    .unwrap_or_else(|e| panic!("{} {scale:?}: {e}", kind.name()));
                assert_eq!(w.num_threads(), 4);
                assert!(w.total_ops() > 100, "{} too small", kind.name());
            }
        }
    }

    #[test]
    fn scales_grow_monotonically() {
        for kind in all_apps() {
            let tiny = kernel(kind, ScaleClass::Tiny, 4, 1).total_ops();
            let small = kernel(kind, ScaleClass::Small, 4, 1).total_ops();
            assert!(
                small > tiny,
                "{}: small ({small}) not larger than tiny ({tiny})",
                kind.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        for kind in [AppKind::Barnes, AppKind::Radix, AppKind::Raytrace] {
            let a = kernel(kind, ScaleClass::Tiny, 4, 9);
            let b = kernel(kind, ScaleClass::Tiny, 4, 9);
            assert_eq!(a, b);
            let c = kernel(kind, ScaleClass::Tiny, 4, 10);
            assert_ne!(a, c, "{} ignores its seed", kind.name());
        }
    }

    #[test]
    fn thread_counts_other_than_four_work() {
        for kind in all_apps() {
            for threads in [1, 2, 3] {
                let w = kernel(kind, ScaleClass::Tiny, threads, 5);
                w.validate()
                    .unwrap_or_else(|e| panic!("{} x{threads}: {e}", kind.name()));
            }
        }
    }

    #[test]
    fn names_and_inputs_are_stable() {
        assert_eq!(AppKind::WaterN2.name(), "water-n2");
        assert_eq!(AppKind::Radix.paper_input(), "256K keys");
        assert_eq!(all_apps().len(), 12);
        // Table 1 stays twelve; the lock-free family is separate.
        assert!(all_apps().iter().all(|a| !a.is_lockfree()));
        assert!(lockfree_apps().iter().all(|a| a.is_lockfree()));
        assert_eq!(AppKind::TreiberStack.name(), "treiber-stack");
        assert_eq!(AppKind::MsQueue.name(), "ms-queue");
        assert_eq!(AppKind::FaCounter.name(), "fa-counter");
        assert_eq!(AppKind::Seqlock.name(), "seqlock");
    }

    #[test]
    fn lockfree_kernels_validate_and_use_atomics() {
        for kind in lockfree_apps() {
            for scale in [ScaleClass::Tiny, ScaleClass::Small] {
                for threads in [1, 2, 4, 8] {
                    let w = kernel(kind, scale, threads, 42);
                    w.validate()
                        .unwrap_or_else(|e| panic!("{} {scale:?} x{threads}: {e}", kind.name()));
                    assert!(
                        w.op_counts().atomics > 0,
                        "{} emits no atomic RMWs",
                        kind.name()
                    );
                }
            }
            let tiny = kernel(kind, ScaleClass::Tiny, 4, 1).total_ops();
            let small = kernel(kind, ScaleClass::Small, 4, 1).total_ops();
            assert!(small > tiny, "{} does not scale", kind.name());
        }
    }

    #[test]
    fn sync_mix_matches_structure() {
        // Barrier-phased kernels have barriers; queue kernels have locks.
        let fft = kernel(AppKind::Fft, ScaleClass::Tiny, 4, 1).op_counts();
        assert!(fft.barriers > 0);
        let ray = kernel(AppKind::Raytrace, ScaleClass::Tiny, 4, 1).op_counts();
        assert!(ray.locks > 10, "raytrace is queue-driven");
        let chol = kernel(AppKind::Cholesky, ScaleClass::Tiny, 4, 1).op_counts();
        let lu = kernel(AppKind::Lu, ScaleClass::Tiny, 4, 1).op_counts();
        // Cholesky synchronizes far more often per data access than LU
        // (the property behind its worst-case overhead in Figure 11).
        let chol_rate = chol.locks as f64 / (chol.reads + chol.writes) as f64;
        let lu_rate = lu.locks as f64 / (lu.reads + lu.writes) as f64;
        assert!(chol_rate > 2.0 * lu_rate);
    }
}

#[cfg(test)]
mod textfmt_tests {
    use super::*;
    use cord_trace::textfmt;

    #[test]
    fn every_kernel_roundtrips_through_the_text_format() {
        for kind in all_apps().into_iter().chain(lockfree_apps()) {
            let w = kernel(kind, ScaleClass::Tiny, 4, 7);
            let text = textfmt::to_text(&w);
            let back = textfmt::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(w, back, "{} did not round-trip", kind.name());
        }
    }
}
