//! Overhead sweep: Figure 11 in miniature — execution time with CORD
//! attached, relative to a machine with no recording or detection
//! support, across all twelve kernels.
//!
//! ```text
//! cargo run --release --example overhead_sweep
//! ```

use cord::prelude::*;
use cord::workloads::{all_apps, kernel, ScaleClass};

fn main() -> Result<(), CordError> {
    println!(
        "{:12} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "app", "base cyc", "cord cyc", "overhead", "race checks", "log bytes"
    );
    let mut ratios = Vec::new();
    for app in all_apps() {
        let workload = kernel(app, ScaleClass::Small, 4, 42);
        let harness = ExperimentHarness::new(MachineConfig::paper_4core());
        let base = harness.run_baseline(&workload)?;
        let cord = harness.run_cord(&workload, &CordConfig::paper())?;
        let ratio = cord.sim.stats.cycles as f64 / base.stats.cycles as f64;
        ratios.push(ratio);
        println!(
            "{:12} {:>10} {:>10} {:>8.2}% {:>12} {:>10}",
            app.name(),
            base.stats.cycles,
            cord.sim.stats.cycles,
            (ratio - 1.0) * 100.0,
            cord.cord_stats.race_check_broadcasts,
            cord.log_bytes,
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\naverage overhead: {:.2}% (paper: 0.4% average, 3% worst case)",
        (avg - 1.0) * 100.0
    );
    Ok(())
}
