//! Quickstart: build a two-thread workload, attach CORD, and look at
//! what the hardware would have recorded and reported.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cord::prelude::*;

fn main() -> Result<(), CordError> {
    // A producer/consumer pair: thread 0 fills a buffer and sets a flag,
    // thread 1 waits for the flag and reads the buffer. Properly
    // synchronized — CORD should record the ordering and report nothing.
    let mut b = WorkloadBuilder::new("quickstart", 2);
    let ready = b.alloc_flag();
    let buffer = b.alloc_line_aligned(32);
    {
        let t0 = &mut b.thread_mut(0);
        for i in 0..32 {
            t0.write(buffer.word(i)).compute(20);
        }
        t0.flag_set(ready);
    }
    {
        let t1 = &mut b.thread_mut(1);
        t1.flag_wait(ready);
        for i in 0..32 {
            t1.read(buffer.word(i)).compute(10);
        }
    }
    let workload = b.build();
    workload.validate().expect("well-formed workload");

    // Run it on the paper's 4-core CMP with the paper's CORD (D = 16).
    let harness = ExperimentHarness::new(MachineConfig::paper_4core());
    let outcome = harness.run_cord(&workload, &CordConfig::paper())?;

    println!("workload          : {}", workload.name());
    println!("execution time    : {} cycles", outcome.sim.stats.cycles);
    println!("memory accesses   : {}", outcome.sim.stats.total_accesses());
    println!("data races found  : {}", outcome.races.len());
    println!(
        "order log         : {} entries, {} bytes",
        outcome.order_log.len(),
        outcome.log_bytes
    );
    println!(
        "clock updates     : {} (sync races ordered: {})",
        outcome.cord_stats.clock_updates, outcome.cord_stats.sync_races
    );

    assert!(
        outcome.races.is_empty(),
        "a synchronized program must be clean"
    );

    // The recorded order can be replayed deterministically.
    let report = harness.verify_replay(
        &workload,
        &CordConfig::paper(),
        cord::sim::engine::InjectionPlan::none(),
    )?;
    println!(
        "replay            : {} segments, {} accesses — exact",
        report.segments, report.accesses
    );
    Ok(())
}
