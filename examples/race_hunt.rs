//! Race hunt: inject a missing-synchronization bug into a Splash-2-style
//! kernel (the paper's §3.4 methodology) and watch CORD and the Ideal
//! oracle find it.
//!
//! ```text
//! cargo run --release --example race_hunt [app] [injections]
//! ```

use cord::inject::Campaign;
use cord::prelude::*;
use cord::stream::{DetectorConfig, ObsCtx, SinkObserver};
use cord::workloads::{all_apps, kernel, AppKind, ScaleClass};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("barnes");
    let injections: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(12);
    let app = all_apps()
        .into_iter()
        .find(|a| a.name() == app_name)
        .unwrap_or(AppKind::Barnes);

    let workload = kernel(app, ScaleClass::Small, 4, 42);
    let machine = MachineConfig::paper_4core();
    let campaign = Campaign::plan(&machine, &workload, injections, 7).expect("dry run completes");
    println!(
        "{}: {} removable sync instances, removing {} of them one run at a time",
        workload.name(),
        campaign.counts.acquires,
        campaign.len()
    );
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "target", "ideal races", "cord races", "verdict"
    );

    let mut manifested = 0;
    let mut detected = 0;
    for (i, target) in campaign.targets.iter().enumerate() {
        let plan = target.plan();
        let seed = 1000 + i as u64;

        // Detectors are stream sinks now: built from a config label and
        // fed events through a SinkObserver adapter, exactly as a
        // capture replay or the cord-serve daemon would feed them.
        let ideal_machine = MachineConfig::infinite_cache();
        let sink =
            DetectorConfig::Ideal.build_sink(4, ideal_machine.cores, seed, ObsCtx::disabled());
        let m = Machine::new(
            ideal_machine,
            &workload,
            SinkObserver::new(sink),
            seed,
            plan,
        );
        let (_, mut obs) = m.run().expect("run ok");
        let ideal = obs.sink_mut().drain();

        let sink =
            DetectorConfig::Cord { d: 16 }.build_sink(4, machine.cores, seed, ObsCtx::disabled());
        let m = Machine::new(
            machine.clone(),
            &workload,
            SinkObserver::new(sink),
            seed,
            plan,
        );
        let (_, mut obs) = m.run().expect("run ok");
        let cord = obs.sink_mut().drain();

        let verdict = match (ideal.race_count > 0, cord.race_count > 0) {
            (true, true) => "CAUGHT",
            (true, false) => "missed",
            (false, false) => "benign",
            (false, true) => "caught*", // different interleaving (§4.2)
        };
        if ideal.race_count > 0 {
            manifested += 1;
        }
        if cord.race_count > 0 {
            detected += 1;
        }
        println!(
            "{:>12} {:>12} {:>12} {:>10}",
            target.to_string(),
            ideal.race_count,
            cord.race_count,
            verdict
        );
    }
    println!(
        "\n{manifested}/{} injections manifested a data race (per Ideal); CORD flagged {detected}",
        campaign.len()
    );
    if manifested > 0 {
        println!(
            "problem detection rate: {:.0}% (paper average: 77%)",
            100.0 * detected as f64 / manifested as f64
        );
    }
}
