//! Replay debugging: record a buggy run's order log, then replay it
//! deterministically — the paper's end-to-end debugging story (§3.3).
//!
//! ```text
//! cargo run --release --example replay_debug
//! ```

use cord::prelude::*;
use cord::workloads::{kernel, AppKind, ScaleClass};

fn main() -> Result<(), CordError> {
    let workload = kernel(AppKind::Radix, ScaleClass::Tiny, 4, 9);
    let harness = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(9);

    // Record a run with an injected synchronization bug.
    let plan = InjectionPlan::remove_nth(3);
    let outcome = harness.run_cord_injected(&workload, &CordConfig::paper(), plan)?;
    println!(
        "recorded {}: {} cycles, {} log entries ({} bytes), {} data races reported",
        workload.name(),
        outcome.sim.stats.cycles,
        outcome.order_log.len(),
        outcome.log_bytes,
        outcome.races.len()
    );

    // Peek at the first few log entries: (clock value, thread,
    // instructions executed at that clock) — the paper's 8-byte format.
    println!("\nfirst log entries:");
    for e in outcome.order_log.iter().take(8) {
        println!(
            "  clock={:<6} thread={} instructions={}",
            e.clock.ticks(),
            e.thread,
            e.instructions
        );
    }

    // Replay: re-execute the recorded access streams in log order and
    // verify every read observes the same write as in the recording.
    match harness.verify_replay(&workload, &CordConfig::paper(), plan) {
        Ok(report) => println!(
            "\nreplay: {} segments scheduled by logical time, {} accesses, outcome identical",
            report.segments, report.accesses
        ),
        Err(e) => println!("\nreplay diverged: {e}"),
    }

    // The races CORD reported point at the bug's location.
    if let Some(r) = outcome.races.first() {
        println!(
            "\nfirst reported race: {} {:?} at address {} (clock {} vs timestamp {})",
            r.thread, r.kind, r.addr, r.my_clock, r.other_ts
        );
    }
    Ok(())
}
