//! Streaming detection: capture a run's event stream, hand it to the
//! cord-serve daemon, and check the daemon's verdict is byte-identical
//! to detecting inline.
//!
//! ```text
//! cargo run --release --example stream_serve [app]
//! ```
//!
//! The pipeline demonstrated here is the detector-as-a-service redesign:
//!
//! 1. run the simulator with a `CaptureObserver` tee, producing the
//!    reified `StreamEvent` sequence the detector saw;
//! 2. encode it with the versioned wire codec (`encode_capture`) — a
//!    self-describing stream whose header names the detector and the
//!    machine geometry;
//! 3. start a `Daemon` on a Unix socket and replay the capture through
//!    it with `ServeClient`;
//! 4. compare the daemon's drained report bytes against the inline
//!    sink's — they must match exactly.

use cord::prelude::*;
use cord::stream::{
    encode_capture, CaptureObserver, DetectorConfig, DetectorSink, ObsCtx, Query, ServeClient,
    SinkObserver, StreamGeometry, StreamHeader,
};
use cord::workloads::{all_apps, kernel, AppKind, ScaleClass};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("fft");
    let app = all_apps()
        .into_iter()
        .find(|a| a.name() == app_name)
        .unwrap_or(AppKind::Fft);

    let threads = 4;
    let seed = 42;
    let workload = kernel(app, ScaleClass::Small, threads, seed);
    let machine = MachineConfig::paper_4core();
    let config = DetectorConfig::Cord { d: 16 };

    // 1. Inline detection with a capture tee.
    let sink = config.build_sink(threads, machine.cores, seed, ObsCtx::disabled());
    let obs = CaptureObserver::new(SinkObserver::new(sink));
    let m = Machine::new(
        machine.clone(),
        &workload,
        obs,
        seed,
        cord::sim::engine::InjectionPlan::none(),
    );
    let (_, obs) = m.run().expect("simulation completes");
    let (mut adapter, events) = obs.into_parts();
    let inline = adapter.sink_mut().drain();
    let inline_bytes = inline.to_bytes();
    println!(
        "{}: captured {} events, inline {} found {} races",
        workload.name(),
        events.len(),
        inline.detector,
        inline.race_count
    );

    // 2. Encode the capture (this is also the on-disk capture format).
    let geometry = StreamGeometry::new(threads, machine.cores, workload.layout());
    let header = StreamHeader::new(workload.name(), &config.label(), seed, geometry);
    let capture = encode_capture(&header, &events);
    println!("capture: {} bytes on the wire", capture.len());

    // 3. Replay through a daemon over a Unix socket.
    let socket =
        std::env::temp_dir().join(format!("cord-stream-serve-{}.sock", std::process::id()));
    let daemon = cord::serve::Daemon::new(cord::serve::DaemonConfig {
        socket: socket.clone(),
        snapshot: None,
        ..Default::default()
    });
    let handle = std::thread::spawn(move || daemon.run());
    let client = ServeClient::new(&socket);
    assert!(client.wait_ready(250), "daemon did not come up");
    let daemon_bytes = client.replay_capture(&capture).expect("daemon replay");

    // 4. The contract.
    assert_eq!(
        daemon_bytes, inline_bytes,
        "daemon report diverged from inline detection"
    );
    println!(
        "daemon report is byte-identical to inline ({} bytes)",
        daemon_bytes.len()
    );

    let status = client.query(Query::Status).expect("status");
    println!("daemon status: {status}");
    client.shutdown().expect("shutdown");
    handle
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
    let _ = std::fs::remove_file(&socket);
}
