//! Trace inspection: dump any kernel's per-thread operation streams in
//! the line-oriented text format, round-trip them, and summarize.
//!
//! ```text
//! cargo run --release --example trace_dump -- cholesky
//! cargo run --release --example trace_dump -- fft > fft.cordtrace
//! ```

use cord::trace::textfmt;
use cord::workloads::{all_apps, kernel, AppKind, ScaleClass};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app_name = args.get(1).map(String::as_str).unwrap_or("cholesky");
    let app = all_apps()
        .into_iter()
        .find(|a| a.name() == app_name)
        .unwrap_or(AppKind::Cholesky);

    let workload = kernel(app, ScaleClass::Tiny, 4, 42);
    let text = textfmt::to_text(&workload);

    // Round-trip as a self-check before printing.
    let back = textfmt::from_text(&text).expect("the dump parses back");
    assert_eq!(workload, back);

    let counts = workload.op_counts();
    eprintln!(
        "# {}: {} threads, {} ops ({} reads, {} writes, {} locks, {} barriers), {} text bytes",
        workload.name(),
        workload.num_threads(),
        workload.total_ops(),
        counts.reads,
        counts.writes,
        counts.locks,
        counts.barriers,
        text.len(),
    );
    print!("{text}");
}
