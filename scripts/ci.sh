#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --release --workspace --quiet

echo "== clippy (deny warnings; unwrap_used denied outside tests) =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy -p cord-sim --all-targets -- -D warnings
cargo clippy -p cord-pool --all-targets -- -D warnings
cargo clippy -p cord-obs --all-targets -- -D warnings
cargo clippy -p cord-fuzz --all-targets -- -D warnings
cargo clippy -p cord-shard --all-targets -- -D warnings
cargo clippy -p cord-serve --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all --check

echo "== parallel-sweep smoke: --jobs 2 must match serial byte-for-byte =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/figures fig10 --scale tiny --injections 2 --jobs 1 \
    --json "$smoke_dir/serial.json" > "$smoke_dir/serial.txt" 2> /dev/null
./target/release/figures fig10 --scale tiny --injections 2 --jobs 2 \
    --json "$smoke_dir/parallel.json" > "$smoke_dir/parallel.txt" 2> /dev/null
diff "$smoke_dir/serial.json" "$smoke_dir/parallel.json"
diff "$smoke_dir/serial.txt" "$smoke_dir/parallel.txt"

echo "== coherence-backend smoke: explicit 4-core snooping flags are the default, byte-for-byte =="
./target/release/figures fig10 --scale tiny --injections 2 --jobs 1 \
    --cores 4 --backend snooping \
    --json "$smoke_dir/explicit4.json" > "$smoke_dir/explicit4.txt" 2> /dev/null
diff "$smoke_dir/serial.json" "$smoke_dir/explicit4.json"
diff "$smoke_dir/serial.txt" "$smoke_dir/explicit4.txt"

echo "== coherence-backend smoke: 8-core directory sweep completes and tags its options =="
./target/release/figures fig10 --scale tiny --injections 2 --jobs 2 \
    --cores 8 --backend directory \
    --json "$smoke_dir/dir8.json" > "$smoke_dir/dir8.txt" 2> /dev/null
test -s "$smoke_dir/dir8.json"
grep -q '"cores": 8' "$smoke_dir/dir8.json"
grep -q '"backend": "directory"' "$smoke_dir/dir8.json"
if diff -q "$smoke_dir/serial.json" "$smoke_dir/dir8.json" > /dev/null; then
    echo "8-core directory sweep unexpectedly identical to 4-core snooping" >&2
    exit 1
fi

echo "== observability smoke: tracing/metrics must not perturb results =="
./target/release/figures fig10 --scale tiny --injections 2 --jobs 2 \
    --json "$smoke_dir/observed.json" \
    --trace-dir "$smoke_dir/traces" --metrics-out "$smoke_dir/metrics.json" \
    > "$smoke_dir/observed.txt" 2> /dev/null
diff "$smoke_dir/serial.json" "$smoke_dir/observed.json"
diff "$smoke_dir/serial.txt" "$smoke_dir/observed.txt"
test -s "$smoke_dir/metrics.json"
ls "$smoke_dir/traces"/*.json > /dev/null

echo "== fuzz smoke: 200 cases, oracle clean, --jobs invariant, corpus replays =="
./target/release/fuzz --seed 1 --count 200 --jobs 1 --budget-secs 600 \
    > "$smoke_dir/fuzz-serial.txt" 2> /dev/null
./target/release/fuzz --seed 1 --count 200 --jobs 2 --budget-secs 600 \
    > "$smoke_dir/fuzz-parallel.txt" 2> /dev/null
diff "$smoke_dir/fuzz-serial.txt" "$smoke_dir/fuzz-parallel.txt"
grep -q "200 of 200 cases, 0 failures" "$smoke_dir/fuzz-serial.txt"
./target/release/fuzz replay crates/fuzz/corpus > "$smoke_dir/fuzz-replay.txt" 2> /dev/null
grep -q ", 0 failures" "$smoke_dir/fuzz-replay.txt"

echo "== lockfree fuzz smoke: 200 CAS-loop-only cases, oracle clean =="
./target/release/fuzz --seed 1 --count 200 --jobs 2 --budget-secs 600 --lockfree \
    > "$smoke_dir/fuzz-lockfree.txt" 2> /dev/null
grep -q "200 of 200 cases, 0 failures" "$smoke_dir/fuzz-lockfree.txt"

echo "== lockfree figures smoke: clean runs report zero races, injections are caught =="
./target/release/figures lockfree > "$smoke_dir/lockfree.txt" 2> /dev/null
grep -q "Lock-free family" "$smoke_dir/lockfree.txt"
for app in treiber-stack ms-queue fa-counter seqlock; do
    # columns: app, clean races, racy inj (snoop), caught (snoop), racy inj (dir), caught (dir)
    awk -v app="$app" '$1 == app {
        found = 1
        if ($2 != 0 || $4 < 1 || $6 < 1) exit 1
    } END { exit !found }' "$smoke_dir/lockfree.txt"
done

echo "== shard smoke: chaos-killed 4-shard campaign must match --shards 1 byte-for-byte =="
./target/release/shard fuzz --dir "$smoke_dir/shard-serial" --shards 1 \
    --count 60 --short --seed 2006 --worker-jobs 2 2> /dev/null
./target/release/shard fuzz --dir "$smoke_dir/shard-chaos" --shards 4 \
    --count 60 --short --seed 2006 --worker-jobs 2 --poll-ms 5 \
    --chaos kill-rate=0.3,budget=6,seed=2006 2> /dev/null
diff "$smoke_dir/shard-serial/merged/report.txt" "$smoke_dir/shard-chaos/merged/report.txt"
diff "$smoke_dir/shard-serial/merged/metrics.json" "$smoke_dir/shard-chaos/merged/metrics.json"

echo "== shard smoke: forced abandonment, then resume heals to identical bytes =="
abandon_rc=0
CORD_SHARD_FAIL_SHARDS=2 ./target/release/shard fuzz --dir "$smoke_dir/shard-abandon" \
    --shards 4 --count 60 --short --seed 2006 --worker-jobs 2 --poll-ms 5 \
    --max-retries 1 2> /dev/null || abandon_rc=$?
test "$abandon_rc" -eq 2
grep -q "shard 2: abandoned" "$smoke_dir/shard-abandon/merged/report.txt"
./target/release/shard resume --dir "$smoke_dir/shard-abandon" --poll-ms 5 2> /dev/null
diff "$smoke_dir/shard-serial/merged/report.txt" "$smoke_dir/shard-abandon/merged/report.txt"
diff "$smoke_dir/shard-serial/merged/metrics.json" "$smoke_dir/shard-abandon/merged/metrics.json"

echo "== shard smoke: sharded sweep matches --shards 1 byte-for-byte =="
./target/release/shard sweep --dir "$smoke_dir/shard-sweep1" --shards 1 \
    --apps fft,radix --injections 2 --scale tiny --seed 13 --worker-jobs 2 2> /dev/null
./target/release/shard sweep --dir "$smoke_dir/shard-sweep4" --shards 4 \
    --apps fft,radix --injections 2 --scale tiny --seed 13 --worker-jobs 2 \
    --poll-ms 5 2> /dev/null
diff "$smoke_dir/shard-sweep1/merged/results.json" "$smoke_dir/shard-sweep4/merged/results.json"
diff "$smoke_dir/shard-sweep1/merged/report.txt" "$smoke_dir/shard-sweep4/merged/report.txt"
diff "$smoke_dir/shard-sweep1/merged/metrics.json" "$smoke_dir/shard-sweep4/merged/metrics.json"

echo "== serve smoke: daemon replay must match inline detection byte-for-byte =="
./target/release/serve smoke > "$smoke_dir/serve-smoke.txt" 2> /dev/null
grep -q ", 0 mismatches" "$smoke_dir/serve-smoke.txt"

echo "== serve smoke: capture file streamed to a daemon over the socket =="
./target/release/serve capture --app fft --config CORD-D16 --seed 42 \
    --out "$smoke_dir/fft.stream" 2> /dev/null
./target/release/serve daemon --socket "$smoke_dir/serve.sock" 2> /dev/null &
serve_pid=$!
for _ in $(seq 50); do test -S "$smoke_dir/serve.sock" && break; sleep 0.1; done
./target/release/serve replay --socket "$smoke_dir/serve.sock" \
    --capture "$smoke_dir/fft.stream" > "$smoke_dir/serve-report.json"
./target/release/serve status --socket "$smoke_dir/serve.sock" > "$smoke_dir/serve-status.json"
grep -q '"detector":"CORD-D16"' "$smoke_dir/serve-report.json"
grep -q '"events":' "$smoke_dir/serve-status.json"
./target/release/serve shutdown --socket "$smoke_dir/serve.sock" > /dev/null
wait "$serve_pid"

echo "== refactor guard: mini sweep must match the committed fixtures =="
./target/release/refactor_guard "$smoke_dir/guard"
diff "$smoke_dir/guard/results.json" crates/bench/tests/fixtures/refactor_guard/results.json
diff "$smoke_dir/guard/checkpoint.json" crates/bench/tests/fixtures/refactor_guard/checkpoint.json
echo "== bench gate: sweep cell must stay within 20% of committed BENCH_engine.json =="
# Single-run timings on shared hardware are noisy, so gate on the best
# of three: a genuine regression slows every run, while a noise spike
# only slows some. Refresh the committed baseline with
#   ./target/release/refactor_guard --bench BENCH_engine.json
best_ns=""
for i in 1 2 3; do
    ./target/release/refactor_guard --bench "$smoke_dir/bench-$i.json" > /dev/null
    run_ns=$(sed -n 's/.*"mean_ns_per_cell": \([0-9.]*\).*/\1/p' "$smoke_dir/bench-$i.json")
    test -n "$run_ns"
    if [ -z "$best_ns" ] || awk -v a="$run_ns" -v b="$best_ns" 'BEGIN { exit !(a < b) }'; then
        best_ns="$run_ns"
    fi
done
base_ns=$(sed -n 's/.*"mean_ns_per_cell": \([0-9.]*\).*/\1/p' BENCH_engine.json)
test -n "$base_ns"
awk -v best="$best_ns" -v base="$base_ns" 'BEGIN {
    ratio = best / base
    printf "bench gate: best %.3f ms/cell vs baseline %.3f ms/cell (%.0f%%)\n",
        best / 1e6, base / 1e6, ratio * 100
    exit !(ratio <= 1.20)
}'

echo "ci: all green"
