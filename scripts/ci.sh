#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test --release --workspace --quiet

echo "== clippy (deny warnings; unwrap_used denied outside tests) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all --check

echo "ci: all green"
