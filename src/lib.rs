//! # CORD — Cost-effective Order-Recording and Data race detection
//!
//! A full reproduction of *"CORD: cost-effective (and nearly
//! overhead-free) order-recording and data race detection"* (Milos
//! Prvulovic, HPCA-12, 2006) as a Rust library, including the CMP
//! simulator substrate the paper evaluates on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`clocks`] — scalar / Lamport / vector logical clocks, the 16-bit
//!   sliding-window comparison, and the D-window update policy.
//! * [`trace`] — the thread-program model (memory ops + synchronization
//!   primitives) that workloads compile to and the simulator executes.
//! * [`sim`] — a discrete-event 4-core CMP simulator: private L1/L2
//!   caches, snooping MESI coherence, data/address/memory buses with
//!   contention, and observer hooks that detectors plug into.
//! * [`core`] — the CORD mechanism itself: two-timestamps-per-line cache
//!   histories, main-memory timestamps, the order-recording log, and the
//!   deterministic replay engine.
//! * [`detectors`] — the Ideal vector-clock oracle and the
//!   InfCache/L2Cache/L1Cache comparison configurations.
//! * [`workloads`] — twelve Splash-2-analogue kernels (Table 1 of the
//!   paper).
//! * [`inject`] — the synchronization-removal fault injector (§3.4).
//!
//! # Quickstart
//!
//! ```
//! use cord::prelude::*;
//!
//! // Build a small workload, attach CORD, run, and look at what it saw.
//! let mut b = cord::trace::WorkloadBuilder::new("demo", 2);
//! let lock = b.alloc_lock();
//! let shared = b.alloc_words(1);
//! for t in 0..2 {
//!     b.thread_mut(t).lock(lock).update(shared.word(0)).unlock(lock);
//! }
//! let workload = b.build();
//! let harness = ExperimentHarness::new(MachineConfig::paper_4core());
//! let outcome = harness.run_cord(&workload, &CordConfig::paper())?;
//! println!(
//!     "{} data races detected, {} order-log entries",
//!     outcome.races.len(),
//!     outcome.order_log.len()
//! );
//! # Ok::<(), cord::core::CordError>(())
//! ```

#![warn(missing_docs)]

pub use cord_clocks as clocks;
pub use cord_core as core;
pub use cord_detectors as detectors;
pub use cord_inject as inject;
pub use cord_obs as obs;
pub use cord_serve as serve;
pub use cord_sim as sim;
pub use cord_trace as trace;
pub use cord_workloads as workloads;

/// Commonly used types, importable with `use cord::prelude::*`.
///
/// Extends [`cord_core::prelude`] (detector, harness, machine, replay,
/// and workload-building types) with the clock primitives and the raw
/// thread-program model.
pub mod prelude {
    pub use cord_clocks::{ClockPolicy, ScalarTime, VectorClock};
    pub use cord_core::prelude::*;
    pub use cord_trace::{Op, ThreadProgram};
}

/// Everything needed to produce, persist, and consume detection event
/// streams, importable with `use cord::stream::*`.
///
/// This is the detector-as-a-service surface: detectors are built
/// through [`DetectorConfig::build_sink`] and fed reified
/// [`StreamEvent`]s — by a simulator (via [`SinkObserver`]), from a
/// capture file (via [`decode_capture`]), or over a daemon socket (via
/// [`ServeClient`]). The wire format is versioned ([`WIRE_VERSION`])
/// and self-describing: a [`StreamHeader`] carries the machine and
/// address-space geometry, so dense indices resolve without a live
/// `Machine`.
pub mod stream {
    pub use cord_core::{
        apply_stream_event, CaptureObserver, DetectorSink, ObsCtx, SinkObserver, SinkReport,
    };
    pub use cord_detectors::{DetectorConfig, DetectorEnum};
    pub use cord_obs::wire::{
        decode_capture, decode_events, encode_capture, read_frame, write_frame,
    };
    pub use cord_obs::{
        kind_from_name, kind_name, StreamEvent, StreamGeometry, StreamHeader, WireError,
        WIRE_VERSION,
    };
    pub use cord_serve::{Daemon, DaemonConfig, Query, ServeClient, ServeError};
}
