//! Ablation tests: each knob DESIGN.md calls out changes behaviour the
//! way the paper's figures say it should.

use cord::core::{CordConfig, CordDetector};
use cord::sim::config::MachineConfig;
use cord::sim::engine::{InjectionPlan, Machine};
use cord::trace::program::Workload;
use cord::trace::WorkloadBuilder;
use cord::workloads::{kernel, AppKind, ScaleClass};

fn run_cord(w: &Workload, cfg: CordConfig, seed: u64, plan: InjectionPlan) -> CordDetector {
    let det = CordDetector::new(cfg, w.num_threads(), 4);
    let m = Machine::new(MachineConfig::paper_4core(), w, det, seed, plan);
    let (_, det) = m.run().expect("no deadlock");
    det
}

/// Figure 6: without main-memory timestamps, synchronization through a
/// displaced lock line is missed and a *false* data race is reported.
#[test]
fn removing_mem_ts_creates_false_positives() {
    // Producer writes X, releases a lock, then displaces *only the lock
    // line* from its cache by streaming lines that map to the same L2
    // set; the consumer then acquires the lock from memory and reads X
    // (whose timestamp is still cached at the producer). This is
    // Figure 6's scenario.
    let mut b = WorkloadBuilder::new("fig6", 2);
    let l = b.alloc_lock();
    let xs = b.alloc_line_aligned(32);
    let x = xs.word(16); // second line of the region: not L2 set 0
    let filler = b.alloc_line_aligned(16 * 1024);
    b.thread_mut(0).lock(l).write(x).unlock(l);
    {
        // The lock lives at SYNC_BASE, whose line maps to L2 set 0 (64
        // sets); touch 12 filler lines in the same set to evict it.
        let sets = MachineConfig::paper_4core().l2.num_sets();
        let base_line = filler.base().line().0;
        let skip = (sets - base_line % sets) % sets;
        let t0 = &mut b.thread_mut(0);
        for j in 0..12u64 {
            t0.write(filler.word((skip + j * sets) * 16));
        }
    }
    b.thread_mut(1).compute(800_000).lock(l).read(x).unlock(l);
    let w = b.build();
    assert_ne!(x.line().0 % 64, 0, "X must not share the lock's L2 set");

    let with_memts = run_cord(&w, CordConfig::paper(), 3, InjectionPlan::none());
    assert!(
        with_memts.races().is_empty(),
        "memory timestamps must keep this clean: {:?}",
        with_memts.races()
    );
    assert!(
        with_memts.mem_timestamps().write() > cord::clocks::ScalarTime::ZERO,
        "the lock line must actually have been displaced into the memory timestamps"
    );

    let without = run_cord(
        &w,
        CordConfig::paper().without_mem_ts(),
        3,
        InjectionPlan::none(),
    );
    assert!(
        !without.races().is_empty(),
        "without memory timestamps the displaced synchronization must be missed \
         and a false race on X reported"
    );
}

/// Figure 2: a single timestamp per line erases history on every clock
/// change; two timestamps preserve it. Measured as raw detections over
/// injected runs of a lock-heavy kernel.
#[test]
fn single_timestamp_per_line_detects_no_more_than_two() {
    let w = kernel(AppKind::WaterN2, ScaleClass::Tiny, 4, 13);
    let mut one_total = 0u64;
    let mut two_total = 0u64;
    for n in 0..8 {
        let plan = InjectionPlan::remove_nth(n * 37);
        let one = run_cord(&w, CordConfig::paper().single_timestamp(), 100 + n, plan);
        let two = run_cord(&w, CordConfig::paper(), 100 + n, plan);
        one_total += one.races().len() as u64;
        two_total += two.races().len() as u64;
    }
    assert!(
        two_total >= one_total,
        "two timestamps per line must not detect fewer races ({two_total} vs {one_total})"
    );
}

/// Figure 5: incrementing the clock on every access (instead of only
/// after sync writes) hides races.
#[test]
fn increment_on_every_access_hides_races() {
    // Unsynchronized write/read pair with a little benign activity in
    // between on the reader side.
    let mut b = WorkloadBuilder::new("fig5", 2);
    let x = b.alloc_line_aligned(1);
    let y = b.alloc_line_aligned(8);
    b.thread_mut(0).write(x.word(0));
    {
        let t1 = &mut b.thread_mut(1);
        t1.compute(100_000);
        for i in 0..8 {
            t1.read(y.word(i));
        }
        for i in 0..8 {
            t1.write(y.word(i));
        }
        t1.read(x.word(0));
    }
    let w = b.build();

    let normal = run_cord(&w, CordConfig::paper(), 5, InjectionPlan::none());
    assert!(
        !normal.races().is_empty(),
        "the unsynchronized read of X must be detected"
    );

    let mut bad_cfg = CordConfig::paper();
    bad_cfg.policy = bad_cfg.policy.increment_on_all_accesses(true);
    let bad = run_cord(&w, bad_cfg, 5, InjectionPlan::none());
    let bad_x_races = bad
        .races()
        .iter()
        .filter(|r| r.addr == cord::trace::Addr::new(0))
        .count();
    assert_eq!(
        bad_x_races, 0,
        "per-access increments inflate the reader's clock past D and hide the race"
    );
}

/// Figures 16/17 in miniature: larger D detects at least as many of the
/// staged races as smaller D on a fixed interleaving.
#[test]
fn d_window_is_monotone_on_staged_races() {
    let build = || {
        let mut b = WorkloadBuilder::new("dmono", 2);
        let l0 = b.alloc_lock();
        let l1 = b.alloc_lock();
        let x = b.alloc_line_aligned(4);
        let private = b.alloc_line_aligned(2);
        {
            let t0 = &mut b.thread_mut(0);
            for i in 0..4 {
                t0.lock(l0).update(private.word(0)).unlock(l0);
                t0.write(x.word(i));
            }
        }
        {
            // The reader churns its own (disjoint) lock first so its
            // clock ends a few ticks above the writer's timestamps, then
            // reads X with no synchronization connecting the two threads
            // — the Figure 8 "similar sync rates" pattern.
            let t1 = &mut b.thread_mut(1);
            for _ in 0..6 {
                t1.lock(l1).update(private.word(1)).unlock(l1);
            }
            t1.compute(400_000);
            for i in 0..4 {
                t1.read(x.word(i));
            }
        }
        b.build()
    };
    let mut last = 0usize;
    for d in [1u64, 4, 16, 256] {
        let det = run_cord(&build(), CordConfig::with_d(d), 21, InjectionPlan::none());
        let races = det.races().len();
        assert!(
            races >= last,
            "D={d} found {races} races, fewer than a smaller D ({last})"
        );
        last = races;
    }
    assert!(last > 0, "D=256 must catch the staged races");
}

/// §2.7.5: the cache walker keeps the 16-bit sliding window intact — no
/// violations in any run.
#[test]
fn window_walker_reports_no_violations() {
    for app in [AppKind::Cholesky, AppKind::Barnes, AppKind::Radiosity] {
        let w = kernel(app, ScaleClass::Small, 4, 7);
        let det = run_cord(&w, CordConfig::paper(), 7, InjectionPlan::none());
        assert_eq!(
            det.stats().window_violations,
            0,
            "{}: sliding-window violations",
            w.name()
        );
    }
}

/// The check-filter bits are purely an optimization: disabling them must
/// not change what is detected, only how many broadcasts are issued.
#[test]
fn check_filters_do_not_change_detection() {
    let w = kernel(AppKind::Lu, ScaleClass::Tiny, 4, 3);
    for plan in [InjectionPlan::none(), InjectionPlan::remove_nth(5)] {
        let with = run_cord(&w, CordConfig::paper(), 9, plan);
        let mut cfg = CordConfig::paper();
        cfg.check_filters = false;
        let without = run_cord(&w, cfg, 9, plan);
        assert_eq!(
            with.races().len(),
            without.races().len(),
            "filters changed detection under {plan:?}"
        );
        assert!(
            with.stats().race_check_broadcasts <= without.stats().race_check_broadcasts,
            "filters must not add broadcasts"
        );
    }
}

/// §2.7.5 end-to-end: the 16-bit hardware comparison (shadow-audited on
/// every cache-timestamp comparison) never disagrees with the unbounded
/// reference while the walker maintains the window.
#[test]
fn sixteen_bit_datapath_agrees_with_reference() {
    for app in [
        AppKind::Barnes,
        AppKind::Cholesky,
        AppKind::Fft,
        AppKind::Radiosity,
        AppKind::WaterN2,
    ] {
        for plan in [InjectionPlan::none(), InjectionPlan::remove_nth(2)] {
            let w = kernel(app, ScaleClass::Small, 4, 29);
            let det = run_cord(&w, CordConfig::paper(), 29, plan);
            assert!(
                det.stats().window16_audits > 0,
                "{}: no comparisons audited",
                w.name()
            );
            assert_eq!(
                det.stats().window16_mismatches,
                0,
                "{}: 16-bit datapath diverged from the reference",
                w.name()
            );
        }
    }
}
