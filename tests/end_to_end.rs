//! Cross-crate integration tests: workloads × simulator × detectors ×
//! replay, end to end.

use cord::core::{CordConfig, CordDetector, ExperimentHarness};
use cord::detectors::{IdealDetector, VcConfig, VcLimitedDetector};
use cord::inject::Campaign;
use cord::sim::config::MachineConfig;
use cord::sim::engine::{InjectionPlan, Machine};
use cord::workloads::{all_apps, kernel, AppKind, ScaleClass};

/// §3.4 requirement: production-run detection must be free of false
/// alarms. Every kernel, clean run, three detectors, several seeds.
#[test]
fn no_detector_fires_on_clean_runs() {
    for app in all_apps() {
        let w = kernel(app, ScaleClass::Tiny, 4, 42);
        for seed in [1, 99] {
            let det = CordDetector::new(CordConfig::paper(), 4, 4);
            let m = Machine::new(
                MachineConfig::paper_4core(),
                &w,
                det,
                seed,
                InjectionPlan::none(),
            );
            let (_, det) = m.run().expect("no deadlock");
            assert!(
                det.races().is_empty(),
                "{} seed {seed}: CORD false positives {:?}",
                w.name(),
                det.races()
            );

            let det = IdealDetector::new(4);
            let m = Machine::new(
                MachineConfig::infinite_cache(),
                &w,
                det,
                seed,
                InjectionPlan::none(),
            );
            let (_, det) = m.run().expect("no deadlock");
            assert!(
                det.races().is_empty(),
                "{} seed {seed}: Ideal false positives {:?}",
                w.name(),
                det.races()
            );

            let det = VcLimitedDetector::new(VcConfig::l2_cache(), 4, 4);
            let m = Machine::new(
                MachineConfig::paper_4core(),
                &w,
                det,
                seed,
                InjectionPlan::none(),
            );
            let (_, det) = m.run().expect("no deadlock");
            assert!(
                det.races().is_empty(),
                "{} seed {seed}: VC false positives {:?}",
                w.name(),
                det.races()
            );
        }
    }
}

/// §3.3: "we performed numerous tests, with and without data race
/// injections, to verify that the entire execution can be accurately
/// replayed". Every kernel, clean + two injected runs.
#[test]
fn replay_is_exact_for_every_kernel() {
    for app in all_apps() {
        let w = kernel(app, ScaleClass::Tiny, 4, 17);
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(17);
        h.verify_replay(&w, &CordConfig::paper(), InjectionPlan::none())
            .unwrap_or_else(|e| panic!("{} clean replay failed: {e}", w.name()));
        let campaign = Campaign::plan(&MachineConfig::paper_4core(), &w, 2, 3).expect("dry run");
        for t in campaign.targets {
            h.verify_replay(&w, &CordConfig::paper(), t.plan())
                .unwrap_or_else(|e| panic!("{} injected({t}) replay failed: {e}", w.name()));
        }
    }
}

/// Injected synchronization bugs manifest and CORD catches a healthy
/// fraction across the suite (paper: 77% of manifested problems).
#[test]
fn cord_detects_injected_problems_across_suite() {
    let mut manifested = 0u32;
    let mut caught = 0u32;
    for app in all_apps() {
        let w = kernel(app, ScaleClass::Tiny, 4, 5);
        let campaign = Campaign::plan(&MachineConfig::paper_4core(), &w, 6, 11).expect("dry run");
        for (i, plan) in campaign.plans().enumerate() {
            let seed = 500 + i as u64;
            let ideal = IdealDetector::new(4);
            let m = Machine::new(MachineConfig::infinite_cache(), &w, ideal, seed, plan);
            let (_, ideal) = m.run().expect("ok");
            if !ideal.found_any() {
                continue;
            }
            manifested += 1;
            let cord = CordDetector::new(CordConfig::paper(), 4, 4);
            let m = Machine::new(MachineConfig::paper_4core(), &w, cord, seed, plan);
            let (_, cord) = m.run().expect("ok");
            caught += u32::from(!cord.races().is_empty());
        }
    }
    assert!(
        manifested >= 10,
        "too few manifested injections: {manifested}"
    );
    let rate = f64::from(caught) / f64::from(manifested);
    assert!(
        rate > 0.4,
        "problem detection rate {rate:.2} collapsed ({caught}/{manifested})"
    );
}

/// The order log is compact: well under the paper's 1 MB bound even
/// proportionally (our runs are far shorter).
#[test]
fn order_logs_are_compact() {
    for app in all_apps() {
        let w = kernel(app, ScaleClass::Tiny, 4, 23);
        let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(23);
        let out = h.run_cord(&w, &CordConfig::paper()).expect("run completes");
        assert!(out.log_bytes > 0, "{}: empty log", w.name());
        assert!(
            out.log_bytes < 512 * 1024,
            "{}: log too large ({} bytes)",
            w.name(),
            out.log_bytes
        );
        // 8 bytes per entry, exactly.
        assert_eq!(out.log_bytes, out.order_log.len() as u64 * 8);
    }
}

/// Thread migration (§2.7.4) introduces no false positives in any
/// kernel.
#[test]
fn migration_is_clean_across_kernels() {
    for app in [AppKind::Fft, AppKind::Lu, AppKind::Ocean, AppKind::WaterSp] {
        let w = kernel(app, ScaleClass::Tiny, 4, 31);
        let mc = MachineConfig::paper_4core().with_barrier_migration();
        let det = CordDetector::new(CordConfig::paper(), 4, mc.cores);
        let m = Machine::new(mc, &w, det, 31, InjectionPlan::none());
        let (out, det) = m.run().expect("no deadlock");
        assert!(
            out.stats.migrations > 0,
            "{}: no migrations happened",
            w.name()
        );
        assert!(
            det.races().is_empty(),
            "{}: migration-induced false positives {:?}",
            w.name(),
            det.races()
        );
    }
}

/// Different seeds produce different interleavings but identical
/// functional outcomes for data-race-free programs (per-thread hashes of
/// reads-see-writes may legitimately differ only when ordering differs —
/// here we check determinism per seed instead).
#[test]
fn runs_are_deterministic_per_seed() {
    let w = kernel(AppKind::Cholesky, ScaleClass::Tiny, 4, 3);
    let run = |seed| {
        let det = CordDetector::new(CordConfig::paper(), 4, 4);
        let m = Machine::new(
            MachineConfig::paper_4core(),
            &w,
            det,
            seed,
            InjectionPlan::none(),
        );
        let (out, det) = m.run().expect("ok");
        (out.stats, out.truth.thread_hashes, det.recorder().bytes())
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0.cycles, run(8).0.cycles);
}

/// §3.4: pre-existing races (the unprotected-progress-counter idiom
/// found shipping in Splash-2) are discovered by CORD and by the oracle,
/// pointing at the right variable.
#[test]
fn known_preexisting_race_is_discovered() {
    use cord::workloads::common::KernelParams;
    use cord::workloads::known_race::{unprotected_progress_counter, PROGRESS_WORD};
    let w = unprotected_progress_counter(KernelParams {
        threads: 4,
        seed: 2,
        scale: 2,
    });
    let det = CordDetector::new(CordConfig::paper(), 4, 4);
    let m = Machine::new(
        MachineConfig::paper_4core(),
        &w,
        det,
        2,
        InjectionPlan::none(),
    );
    let (_, cord) = m.run().expect("ok");
    assert!(
        cord.races().iter().any(|r| r.addr == PROGRESS_WORD),
        "CORD must flag the unprotected counter: {:?}",
        cord.races()
    );
    let det = IdealDetector::new(4);
    let m = Machine::new(
        MachineConfig::infinite_cache(),
        &w,
        det,
        2,
        InjectionPlan::none(),
    );
    let (_, ideal) = m.run().expect("ok");
    assert!(ideal.raced_words().contains(&PROGRESS_WORD));
    // No false positives elsewhere: every report targets the counter.
    assert!(cord.races().iter().all(|r| r.addr == PROGRESS_WORD));
}

/// The hardware 8-byte log encoding round-trips a real recorded run and
/// the decoded log still replays it (the full §2.7.1 + §3.3 pipeline).
#[test]
fn hardware_log_encoding_survives_record_and_replay() {
    use cord::core::{logfmt, replay_and_verify};
    let w = kernel(AppKind::Radix, ScaleClass::Tiny, 4, 37);
    let machine = MachineConfig::paper_4core().with_resolved_capture();
    let det = CordDetector::new(CordConfig::paper(), 4, machine.cores);
    let m = Machine::new(machine, &w, det, 37, InjectionPlan::remove_nth(4));
    let (out, det) = m.run().expect("ok");

    // Encode to the wire format, decode, and replay from the decoded log.
    let bytes = logfmt::encode(det.recorder().entries());
    let decoded = logfmt::decode(&bytes, 4).expect("wire log decodes");
    assert_eq!(decoded, det.recorder().entries());
    let resolved = out.truth.resolved.as_ref().expect("captured");
    replay_and_verify(
        &decoded,
        resolved,
        &out.stats.instr_counts,
        &out.truth.thread_hashes,
    )
    .expect("decoded hardware log replays the run exactly");
}

/// Replay-parallelism analysis on a real log: wave widths are bounded by
/// the thread count's concurrency and the mean is at least 1.
#[test]
fn replay_parallelism_is_sane_on_real_logs() {
    use cord::core::replay_parallelism;
    let w = kernel(AppKind::WaterN2, ScaleClass::Tiny, 4, 41);
    let h = ExperimentHarness::new(MachineConfig::paper_4core()).with_seed(41);
    let out = h.run_cord(&w, &CordConfig::paper()).expect("run completes");
    let p = replay_parallelism(&out.order_log);
    assert_eq!(p.segments, out.order_log.len());
    assert!(p.mean_width >= 1.0);
    assert!(p.waves <= p.segments);
    assert!(p.max_width >= 1);
}

/// §2.4: "real systems may have many more threads than processors" —
/// eight threads time-multiplex onto the 4-core machine. CORD stays
/// false-positive-free (the §2.7.4 migration bump covers descheduled
/// threads' stale timestamps) and the recorded order still replays
/// exactly.
#[test]
fn more_threads_than_cores_is_clean_and_replays() {
    for threads in [6usize, 8] {
        let w = kernel(AppKind::Cholesky, ScaleClass::Tiny, threads, 47);
        let machine = MachineConfig::paper_4core();
        let det = CordDetector::new(CordConfig::paper(), threads, machine.cores);
        let m = Machine::new(machine.clone(), &w, det, 47, InjectionPlan::none());
        let (out, det) = m.run().expect("no deadlock");
        assert_eq!(out.stats.instr_counts.len(), threads);
        assert!(
            out.stats.migrations > 0,
            "{threads} threads on 4 cores must migrate"
        );
        assert!(
            det.races().is_empty(),
            "{threads}-thread false positives: {:?}",
            det.races()
        );
        assert!(det.stats().migration_bumps > 0);

        // Replay verification with time multiplexing.
        let h = ExperimentHarness::new(machine).with_seed(47);
        h.verify_replay(&w, &CordConfig::paper(), InjectionPlan::none())
            .unwrap_or_else(|e| panic!("{threads}-thread replay failed: {e}"));
    }
}

/// Injected bugs remain detectable with oversubscribed threads; the
/// Ideal oracle still defines manifestation.
#[test]
fn oversubscribed_injection_detection_works() {
    let threads = 6;
    // volrend manifests nearly always (its queue waits order everything).
    let w = kernel(AppKind::Volrend, ScaleClass::Tiny, threads, 53);
    let campaign = Campaign::plan(&MachineConfig::paper_4core(), &w, 12, 9).expect("dry run");
    let mut manifested = 0;
    let mut caught = 0;
    for (i, plan) in campaign.plans().enumerate() {
        let seed = 700 + i as u64;
        let ideal = IdealDetector::new(threads);
        let m = Machine::new(MachineConfig::infinite_cache(), &w, ideal, seed, plan);
        let (_, ideal) = m.run().expect("ok");
        if !ideal.found_any() {
            continue;
        }
        manifested += 1;
        let cord = CordDetector::new(CordConfig::paper(), threads, 4);
        let m = Machine::new(MachineConfig::paper_4core(), &w, cord, seed, plan);
        let (_, cord) = m.run().expect("ok");
        caught += u32::from(!cord.races().is_empty());
    }
    // At least some manifest and CORD catches at least one.
    assert!(manifested > 0, "no injections manifested");
    assert!(caught > 0, "CORD caught nothing ({manifested} manifested)");
}
