//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched. This stub runs each benchmark closure for a short,
//! fixed-work measurement and prints a mean time per iteration — enough
//! to keep `cargo bench` runnable and the bench targets compiling; it
//! performs no statistical analysis.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs one benchmark's closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the chosen iteration count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as the benchmark `id` within this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Sets the target sample count (accepted for API parity; this
    /// harness self-calibrates its iteration count instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibrate: run once, then pick an iteration count aiming at a
    // ~20ms measurement, capped to keep whole-run benches quick.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("bench {name:50} {mean:>12.1} ns/iter ({iters} iters)");
}

/// Declares the benchmark entry list, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
