//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no network access, so the real crate cannot
//! be fetched. This stub keeps the same surface — the [`proptest!`]
//! macro, range/tuple/`Just`/`prop_map`/`prop_oneof!` strategies,
//! `collection::vec`, `bool::ANY`, `prop_assert*!` and `prop_assume!` —
//! backed by a fixed-seed generator instead of a shrinking engine.
//! Failing cases therefore reproduce exactly across runs, but are not
//! minimized.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of a named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index, so each
        // test and case gets an independent, stable stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128) * span) >> 64
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + rng.below(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy form of [`Arbitrary`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — lengths in `[start, end)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u128;
            let n = self.len.start + (((rng.next_u64() as u128) * span) >> 64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Unweighted coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// The `prop::` alias real proptest exposes in its prelude.
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

/// Asserts inside a proptest case; failure reports the case's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test-defining macro. Supports the two argument forms the real
/// crate accepts — `name in strategy` and `name: Type` (implicit
/// `any::<Type>()`) — plus an optional `#![proptest_config(...)]`
/// header.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };

    // No tests left.
    (@tests ($cfg:expr)) => {};

    // One test fn, then recurse on the rest.
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        // `$meta` carries the user's own `#[test]`; adding another here
        // would register the test twice.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let outcome: ::core::result::Result<(), String> =
                    $crate::proptest!(@case rng, ($($args)*), $body);
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {msg}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };

    // Argument munching: bind each arg, then run the body. The body
    // runs inside an IIFE returning Result so prop_assert!/prop_assume!
    // can early-return.
    (@case $rng:ident, ($($args:tt)*), $body:block) => {
        (|| -> ::core::result::Result<(), String> {
            $crate::proptest!(@bind $rng, $($args)*);
            $body
            #[allow(unreachable_code)]
            ::core::result::Result::Ok(())
        })()
    };

    // Bind: `pat in strategy` form.
    (@bind $rng:ident, $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $pat:pat_param in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    // Bind: plain `name: Type` form (implicit any::<Type>()).
    (@bind $rng:ident, $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $arg:ident : $ty:ty) => {
        let $arg: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    // Done (also absorbs a trailing comma).
    (@bind $rng:ident,) => {};
    (@bind $rng:ident) => {};

    // Entry without a config header. Must come after the `@` rules:
    // a leading catch-all would also swallow recursive `@tests` calls.
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 3u64..10,
            v in crate::collection::vec((0u8..4, crate::bool::ANY), 1..9),
            flag: bool,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (b, _) in &v {
                prop_assert!(*b < 4);
            }
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_work(
            y in prop_oneof![Just(1u64), (10u64..20).prop_map(|v| v * 2)],
        ) {
            prop_assert!(y == 1 || (20..40).contains(&y));
        }

        #[test]
        fn assume_skips(a: u16, b: u16) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
