//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: seedable generators (`SmallRng`, `StdRng`), uniform integer
//! ranges, raw `gen()`, and `gen_bool`.
//!
//! The container this repository builds in has no network access and no
//! vendored registry, so the real crate cannot be fetched. This stub is
//! a self-contained xoshiro256++ implementation behind the same method
//! names. It is *not* a statistical drop-in for `rand` — streams differ
//! — but every consumer in the workspace only needs seed-deterministic,
//! well-mixed values, which it provides.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = uniform_u128(rng, span);
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = uniform_u128(rng, span);
                (lo as u128 + v) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let v = uniform_u128(rng, span);
                ((self.start as i128) + (v as i128)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128) - (lo as i128)) as u128 + 1;
                let v = uniform_u128(rng, span);
                ((lo as i128) + (v as i128)) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` (`span > 0`) by widening rejection-free
/// multiply-shift; bias is < 2^-64 and irrelevant for simulation jitter.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform draw of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        // 53 random mantissa bits, like rand's f64 sampling.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The "small, fast" generator (stub: xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    /// The "standard" generator (stub: xoshiro256++ on a tweaked seed so
    /// the two types produce distinct streams from equal seeds).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for i in 0..1000u64 {
            let v = r.gen_range(0..=i);
            assert!(v <= i);
            let w: usize = r.gen_range(0..10);
            assert!(w < 10);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn distinct_generator_families() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_values_cover_span() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
